package simil

import (
	"math"
	"math/rand"
	"testing"

	"spatialseq/internal/dataset"
	"spatialseq/internal/geo"
	"spatialseq/internal/query"
	"spatialseq/internal/testutil"
	"spatialseq/internal/vectormath"
)

func newCtx(t *testing.T, rng *rand.Rand, m int, beta float64) (*Context, *query.Query) {
	t.Helper()
	ds := testutil.RandDataset(rng, 120, 3, 4, 100)
	params := query.Params{K: 5, Alpha: 0.5, Beta: beta, GridD: 4, Xi: 10}
	q := testutil.RandQuery(rng, ds, m, 30, params)
	if err := q.Validate(ds); err != nil {
		t.Fatal(err)
	}
	return NewContext(ds, q), q
}

func TestContextPrecomputation(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	c, q := newCtx(t, rng, 3, 1.5)
	if c.M != 3 || c.Pairs != 3 {
		t.Errorf("M/Pairs = %d/%d", c.M, c.Pairs)
	}
	if math.Abs(c.Norm-q.Example.Norm()) > 1e-12 {
		t.Errorf("Norm = %g, want %g", c.Norm, q.Example.Norm())
	}
	// XNormed has unit norm
	if n := geo.Norm(c.XNormed); math.Abs(n-1) > 1e-9 {
		t.Errorf("||XNormed|| = %g", n)
	}
	// SuffixSq is a proper suffix sum ending at 0
	if c.SuffixSq[c.Pairs] != 0 {
		t.Error("SuffixSq must end at 0")
	}
	if math.Abs(c.SuffixSq[0]-1) > 1e-9 {
		t.Errorf("SuffixSq[0] = %g, want 1", c.SuffixSq[0])
	}
}

func TestScratchPushPop(t *testing.T) {
	s := NewScratch(3)
	n1 := s.Push(geo.Point{X: 0, Y: 0}, 0.9)
	if n1 != 0 {
		t.Errorf("first push added %d distances", n1)
	}
	n2 := s.Push(geo.Point{X: 3, Y: 4}, 0.8)
	if n2 != 1 || math.Abs(s.Y[0]-5) > 1e-12 {
		t.Errorf("second push: n=%d Y=%v", n2, s.Y)
	}
	n3 := s.Push(geo.Point{X: 0, Y: 8}, 0.7)
	if n3 != 2 || len(s.Y) != 3 {
		t.Errorf("third push: n=%d Y=%v", n3, s.Y)
	}
	if math.Abs(s.AttrSum()-2.4) > 1e-12 {
		t.Errorf("AttrSum = %g", s.AttrSum())
	}
	s.Pop(n3)
	if len(s.Y) != 1 || len(s.Locs) != 2 {
		t.Errorf("after pop: Y=%v Locs=%v", s.Y, s.Locs)
	}
	s.Reset()
	if len(s.Y) != 0 || len(s.Locs) != 0 || len(s.AttrSims) != 0 {
		t.Error("Reset must clear everything")
	}
}

// The heart of the pruning algorithms: Eq. 5 must upper-bound the true
// cosine for ANY completion of a prefix, and Eq. 9 must do the same for
// completions satisfying the beta-norm constraint.
func TestSpatialBoundsAreTrueUpperBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		m := 3 + rng.Intn(3)
		c, q := newCtx(t, rng, m, 1.0+rng.Float64()*3)
		pairs := c.Pairs
		for completionTrial := 0; completionTrial < 50; completionTrial++ {
			// random full tuple locations near the example
			locs := make([]geo.Point, m)
			for i := range locs {
				base := q.Example.Locations[i]
				locs[i] = geo.Point{
					X: base.X + rng.NormFloat64()*c.Norm/2,
					Y: base.Y + rng.NormFloat64()*c.Norm/2,
				}
			}
			y := geo.DistVector(locs, nil)
			cosFull := vectormath.Cos(c.X, y)
			norm := geo.Norm(y)
			for i := 1; i < m; i++ {
				u := geo.PairCount(i)
				prefix := y[:u]
				b5 := c.SpatialBoundEq5(prefix)
				if cosFull > b5+1e-9 {
					t.Fatalf("Eq5 violated: cos %.9f > bound %.9f (u=%d of %d)", cosFull, b5, u, pairs)
				}
				if c.NormOK(norm) {
					b9 := c.SpatialBoundEq9(prefix)
					if cosFull > b9+1e-9 {
						t.Fatalf("Eq9 violated for feasible tuple: cos %.9f > bound %.9f (u=%d)", cosFull, b9, u)
					}
					bb := c.SpatialBound(prefix)
					if cosFull > bb+1e-9 {
						t.Fatalf("combined bound violated: cos %.9f > %.9f", cosFull, bb)
					}
				}
			}
		}
	}
}

func TestEq9InfeasiblePrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	c, _ := newCtx(t, rng, 3, 1.2)
	// a prefix distance far beyond beta*||V_t*|| can never be completed
	huge := []float64{c.Beta*c.Norm*10 + 1}
	if b := c.SpatialBoundEq9(huge); !math.IsInf(b, -1) {
		t.Errorf("infeasible prefix should bound to -Inf, got %g", b)
	}
	if b := c.SpatialBound(huge); !math.IsInf(b, -1) {
		t.Errorf("combined bound should propagate -Inf, got %g", b)
	}
}

func TestEq9VacuousForSEQ(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	ds := testutil.RandDataset(rng, 50, 2, 4, 100)
	params := query.Params{K: 5, Alpha: 0.5, Beta: 1.5, GridD: 4, Xi: 10}
	q := testutil.RandQuery(rng, ds, 3, 30, params)
	q.Variant = query.SEQ
	if err := q.Validate(ds); err != nil {
		t.Fatal(err)
	}
	c := NewContext(ds, q)
	if b := c.SpatialBoundEq9([]float64{1e9}); b != 1 {
		t.Errorf("Eq9 with beta=Inf should be vacuous (1), got %g", b)
	}
}

func TestAttrBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	c, _ := newCtx(t, rng, 3, 1.5)
	// loose: remaining dims count 1
	if got := c.AttrBoundLoose(1.2, 2); math.Abs(got-(1.2+1)/3) > 1e-12 {
		t.Errorf("AttrBoundLoose = %g", got)
	}
	// refined with rbar suffix
	rbarSuffix := []float64{2.4, 1.5, 0.7, 0}
	if got := c.AttrBoundRefined(1.2, 2, rbarSuffix); math.Abs(got-(1.2+0.7)/3) > 1e-12 {
		t.Errorf("AttrBoundRefined = %g", got)
	}
	// refined <= loose whenever rbar <= 1
	if c.AttrBoundRefined(1.2, 2, rbarSuffix) > c.AttrBoundLoose(1.2, 2) {
		t.Error("refined bound should not exceed loose bound")
	}
}

func TestSimOfPositionsChecks(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	c, q := newCtx(t, rng, 3, 1.5)
	cat0 := q.Example.Categories[0]
	objs := c.DS.CategoryObjects(cat0)
	if len(objs) == 0 {
		t.Skip("no objects in category")
	}
	// duplicate positions rejected
	if _, ok := c.SimOfPositions([]int32{objs[0], objs[0], objs[0]}); ok {
		t.Error("duplicate positions must be rejected")
	}
}

func TestCombine(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	c, _ := newCtx(t, rng, 3, 1.5)
	if got := c.Combine(1, 0); math.Abs(got-c.Alpha) > 1e-12 {
		t.Errorf("Combine(1,0) = %g, want alpha", got)
	}
	if got := c.Combine(0, 1); math.Abs(got-(1-c.Alpha)) > 1e-12 {
		t.Errorf("Combine(0,1) = %g, want 1-alpha", got)
	}
}

func TestCandidatesSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	c, q := newCtx(t, rng, 3, 1.5)
	all := make([]int32, c.DS.Len())
	for i := range all {
		all[i] = int32(i)
	}
	for d := 0; d < c.M; d++ {
		cands := c.Candidates(d, all)
		for i := 1; i < len(cands); i++ {
			if cands[i].Sim > cands[i-1].Sim {
				t.Fatalf("dim %d: candidates not sorted desc at %d", d, i)
			}
		}
		for _, cd := range cands {
			if c.DS.Object(int(cd.Pos)).Category != q.Example.Categories[d] {
				t.Fatalf("dim %d: candidate %d has wrong category", d, cd.Pos)
			}
			if math.Abs(cd.Sim-c.AttrSim(d, cd.Pos)) > 1e-12 {
				t.Fatalf("dim %d: candidate sim stale", d)
			}
		}
	}
	if MaxSim(nil) != 0 {
		t.Error("MaxSim(nil) should be 0")
	}
}

func TestTupleSimMatchesDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(49))
	c, _ := newCtx(t, rng, 3, 5)
	for trial := 0; trial < 50; trial++ {
		tuple := make([]int32, c.M)
		locs := make([]geo.Point, c.M)
		attrs := make([]float64, c.M)
		retry := false
		for d := range tuple {
			objs := c.DS.CategoryObjects(c.Ex.Categories[d])
			if len(objs) == 0 {
				retry = true
				break
			}
			tuple[d] = objs[rng.Intn(len(objs))]
			locs[d] = c.DS.Object(int(tuple[d])).Loc
			attrs[d] = c.AttrSim(d, tuple[d])
		}
		if retry {
			continue
		}
		y := geo.DistVector(locs, nil)
		got := c.TupleSim(y, attrs)
		// definition: alpha*cos(X,y) + (1-alpha)*mean(attrs)
		var mean float64
		for _, a := range attrs {
			mean += a
		}
		mean /= float64(len(attrs))
		want := c.Alpha*vectormath.Cos(c.X, y) + (1-c.Alpha)*mean
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("TupleSim = %g, want %g", got, want)
		}
	}
}

// A degenerate example (all locations coincident, ||V_t*|| = 0) must keep
// Eq. 5 a true upper bound: a tuple of coincident objects scores
// SIMs = Cos(0, 0) = 1, so the bound has to be 1 (vacuous), not the 0 the
// raw formula yields. Regression test for the pruning bug where HSP could
// discard such tuples once the heap was full.
func TestSpatialBoundsDegenerateExample(t *testing.T) {
	b := &dataset.Builder{}
	ca := b.Category("a")
	cb := b.Category("b")
	b.Add(dataset.Object{ID: 1, Loc: geo.Point{X: 3, Y: 3}, Category: ca, Attr: []float64{1}})
	b.Add(dataset.Object{ID: 2, Loc: geo.Point{X: 3, Y: 3}, Category: cb, Attr: []float64{1}})
	b.Add(dataset.Object{ID: 3, Loc: geo.Point{X: 9, Y: 9}, Category: cb, Attr: []float64{1}})
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	q := &query.Query{
		Variant: query.CSEQ,
		Params:  query.Params{K: 2, Alpha: 0.5, Beta: 1.5, GridD: 3, Xi: 5},
		Example: query.Example{
			Categories: []dataset.CategoryID{ca, cb},
			Locations:  []geo.Point{{X: 5, Y: 5}, {X: 5, Y: 5}}, // coincident: norm 0
			Attrs:      [][]float64{{1}, {1}},
		},
	}
	if err := q.Validate(ds); err != nil {
		t.Fatal(err)
	}
	c := NewContext(ds, q)
	if c.Norm != 0 {
		t.Fatalf("example norm = %g, want 0", c.Norm)
	}
	for _, prefix := range [][]float64{nil, {0}} {
		if got := c.SpatialBoundEq5(prefix); got != 1 {
			t.Errorf("Eq5(%v) = %g, want vacuous 1", prefix, got)
		}
	}
	// The coincident pair (obj 1, obj 2) is the only beta-feasible tuple
	// (ref norm 0 and finite beta force candidate norm 0) and scores 1.
	sim, ok := c.SimOfPositions([]int32{0, 1})
	if !ok || sim != 1 {
		t.Fatalf("coincident tuple: sim=%g ok=%v, want 1 true", sim, ok)
	}
	if _, ok := c.SimOfPositions([]int32{0, 2}); ok {
		t.Error("non-coincident tuple must fail the beta-norm constraint")
	}
}
