// Package simil evaluates the SEQ/CSEQ similarity model for one query: the
// spatial cosine over distance vectors, the per-dimension attribute
// cosines, the combined tuple similarity, and the prefix upper bounds the
// pruning algorithms rely on (the paper's Eq. 5, Eq. 6 and Eq. 9).
//
// A Context is built once per query and then shared read-only by the
// enumeration; the scratch buffers needed during DFS live in a separate
// per-goroutine Scratch value.
package simil

import (
	"math"

	"spatialseq/internal/dataset"
	"spatialseq/internal/geo"
	"spatialseq/internal/query"
	"spatialseq/internal/vectormath"
)

// Context holds the per-query similarity state.
type Context struct {
	DS    *dataset.Dataset
	Ex    *query.Example
	Alpha float64
	// Beta is the effective norm constraint (+Inf for SEQ).
	Beta float64
	// M is the tuple size.
	M int
	// Pairs is the number of active distance pairs: M*(M-1)/2 minus any
	// skipped pairs.
	Pairs int
	// X is the example distance vector in prefix-friendly order, with
	// skipped pairs omitted.
	X []float64
	// XNormed is X normalised to unit length (x'_j). All zeros when the
	// example is degenerate (all locations coincide).
	XNormed []float64
	// Norm is ||V_t*|| over the active pairs.
	Norm float64
	// SuffixSq[u] = sum_{j>=u} XNormed[j]^2; SuffixSq[len(X)] = 0.
	SuffixSq []float64
	// Active flags each PairIndex slot as participating; nil when no
	// pairs are skipped (the common case — keeps the hot path branch-light).
	Active []bool
	// GraphDiam is the active-pair graph diameter (1 with no skips); the
	// partition radius is GraphDiam * beta * ||V_t*||.
	GraphDiam int
	// Metric is the example's distance function (nil = Euclidean).
	Metric query.Metric

	// exNorms[d] is the precomputed Euclidean norm of Ex.Attrs[d], so
	// AttrSim needs only a dot product per candidate (CosPrenormed).
	exNorms []float64

	// Attribute-similarity memo (see EnableMemo / PrepareMemoShared).
	// The table is keyed (dimension, category rank): memo[memoOff[d]+r]
	// holds SIMa between example dimension d and the r-th object of d's
	// category, NaN when not yet computed. memoShared marks the table as
	// eagerly filled and read-only, safe to share across subspace workers;
	// the hit/miss counters are only maintained in the single-goroutine
	// lazy mode.
	memo       []float64
	memoOff    []int
	memoShared bool
	memoHits   int64
	memoMisses int64
}

// Dist measures the distance between two locations under the query metric.
//
//seq:hotpath
func (c *Context) Dist(a, b geo.Point) float64 {
	if c.Metric == nil {
		return a.Dist(b)
	}
	return c.Metric.Dist(a, b)
}

// NewContext prepares the similarity state for q against ds. The query must
// already be validated.
func NewContext(ds *dataset.Dataset, q *query.Query) *Context {
	ex := &q.Example
	m := ex.M()
	var active []bool
	diam := 1
	if len(ex.SkipPairs) > 0 {
		active = make([]bool, geo.PairCount(m))
		for j := 1; j < m; j++ {
			for i := 0; i < j; i++ {
				active[geo.PairIndex(i, j)] = ex.PairActive(i, j)
			}
		}
		if d, connected := ex.PairGraphDiameter(); connected {
			diam = d
		} else {
			diam = 0 // only meaningful with beta = +Inf (validated upstream)
		}
	}
	x := ex.DistVector()
	norm := geo.Norm(x)
	xn := make([]float64, len(x))
	if norm > 0 {
		for i, v := range x {
			xn[i] = v / norm
		}
	}
	suffix := make([]float64, len(x)+1)
	for j := len(x) - 1; j >= 0; j-- {
		suffix[j] = suffix[j+1] + xn[j]*xn[j]
	}
	exNorms := make([]float64, m)
	for d, a := range ex.Attrs {
		exNorms[d] = vectormath.Norm(a)
	}
	return &Context{
		DS:        ds,
		Ex:        ex,
		Alpha:     q.Params.Alpha,
		Beta:      q.EffectiveBeta(),
		M:         m,
		Pairs:     len(x),
		X:         x,
		XNormed:   xn,
		Norm:      norm,
		SuffixSq:  suffix,
		Active:    active,
		GraphDiam: diam,
		Metric:    ex.Metric,
		exNorms:   exNorms,
	}
}

// PartitionRadius returns the spatial containment radius for the
// hierarchical partitioning: GraphDiam * beta * ||V_t*||. It returns +Inf
// when the constraint cannot bound the extent (SEQ, degenerate examples, a
// disconnected pair graph, or a metric that does not dominate the
// Euclidean distance — then only the whole space is a safe subspace).
func (c *Context) PartitionRadius() float64 {
	if c.Metric != nil && !c.Metric.DominatesEuclidean() {
		return math.Inf(1)
	}
	r := float64(c.GraphDiam) * c.Beta * c.Norm
	if !(r > 0) {
		return math.Inf(1)
	}
	return r
}

// DistVectorOf writes the masked distance vector of locs (under the query
// metric) into dst (resized) and returns it.
//
//seq:hotpath
func (c *Context) DistVectorOf(locs []geo.Point, dst []float64) []float64 {
	if c.Active == nil && c.Metric == nil {
		return geo.DistVector(locs, dst)
	}
	dst = dst[:0]
	for j := 1; j < len(locs); j++ {
		for i := 0; i < j; i++ {
			if c.Active == nil || c.Active[geo.PairIndex(i, j)] {
				//lint:ignore hotpathalloc appends into the caller's reused dst; capacity is amortised after the first tuple
				dst = append(dst, c.Dist(locs[i], locs[j]))
			}
		}
	}
	return dst
}

// DistVectorOfPositions writes the masked distance vector of the tuple of
// dataset positions into dst (resized) and returns it. On the common path
// (no skipped pairs, Euclidean metric) it runs the position-indexed SoA
// kernel over the dataset's contiguous coordinate slices instead of
// gathering geo.Points first.
//
//seq:hotpath
func (c *Context) DistVectorOfPositions(tuple []int32, dst []float64) []float64 {
	if c.Active == nil && c.Metric == nil {
		xs, ys := c.DS.Coords()
		return geo.DistVectorAt(xs, ys, tuple, dst)
	}
	dst = dst[:0]
	for j := 1; j < len(tuple); j++ {
		pj := c.DS.Loc(int(tuple[j]))
		for i := 0; i < j; i++ {
			if c.Active == nil || c.Active[geo.PairIndex(i, j)] {
				//lint:ignore hotpathalloc appends into the caller's reused dst; capacity is amortised after the first tuple
				dst = append(dst, c.Dist(c.DS.Loc(int(tuple[i])), pj))
			}
		}
	}
	return dst
}

// AttrSim returns SIMa between example dimension dim and the dataset object
// at position pos. It equals vectormath.Cos(Ex.Attrs[dim], object attrs)
// bit-for-bit, but costs only a dot product: both norms are precomputed
// (dataset build / NewContext). With the memo enabled each (dim, pos)
// cosine is computed at most once per query.
//
//seq:hotpath
func (c *Context) AttrSim(dim int, pos int32) float64 {
	if c.memo != nil && c.DS.Category(int(pos)) == c.Ex.Categories[dim] {
		idx := c.memoOff[dim] + int(c.DS.CategoryRank(int(pos)))
		//lint:ignore floatcmp v == v is the canonical NaN-sentinel test (false iff v is NaN), not a value comparison
		if v := c.memo[idx]; v == v {
			if !c.memoShared {
				c.memoHits++
			}
			return v
		}
		v := c.attrSimDirect(dim, pos)
		if !c.memoShared {
			// Lazy single-goroutine fill; a shared (eagerly filled)
			// table stays read-only so workers never race.
			c.memoMisses++
			c.memo[idx] = v
		}
		return v
	}
	return c.attrSimDirect(dim, pos)
}

// attrSimDirect is the uncached kernel: one dot product over the flat
// attribute row plus the prenormed cosine.
//
//seq:hotpath
func (c *Context) attrSimDirect(dim int, pos int32) float64 {
	dot := vectormath.Dot(c.Ex.Attrs[dim], c.DS.Attr(int(pos)))
	return vectormath.CosPrenormed(dot, c.exNorms[dim], c.DS.AttrNorm(int(pos)))
}

// memoSize lays out the memo offsets (one dense segment per example
// dimension, sized by the dimension's category population) and returns the
// total entry count.
func (c *Context) memoSize() int {
	if c.memoOff == nil {
		c.memoOff = make([]int, c.M+1)
		for d := 0; d < c.M; d++ {
			c.memoOff[d+1] = c.memoOff[d] + len(c.DS.CategoryObjects(c.Ex.Categories[d]))
		}
	}
	return c.memoOff[c.M]
}

// EnableMemo switches AttrSim to lazily memoized mode: the first lookup of
// each (dimension, candidate) computes and stores the cosine, later
// lookups are table reads. The table is NaN-initialised and must only be
// filled from a single goroutine — parallel searches use PrepareMemoShared
// instead. Worst-case memory is m x N float64s; the category-dense layout
// shrinks that to the query's actual candidate universe
// (sum over dimensions of the matching category's population).
func (c *Context) EnableMemo() {
	if c.memo != nil {
		return
	}
	n := c.memoSize()
	c.memo = make([]float64, n)
	nan := math.NaN()
	for i := range c.memo {
		c.memo[i] = nan
	}
}

// PrepareMemoShared eagerly fills the memo for every (dimension, matching
// candidate) pair — dimensions pinned to a fixed object get only that
// object's entry — and freezes it read-only, so concurrent subspace
// workers can share the Context without racing. It returns how many
// cosines were computed (the query's memo misses; every later AttrSim is a
// hit). Calling it again is a no-op returning 0.
func (c *Context) PrepareMemoShared() int64 {
	if c.memoShared {
		return 0
	}
	c.EnableMemo()
	var computed int64
	for d := 0; d < c.M; d++ {
		if fixed := c.Ex.FixedDim(d); fixed >= 0 {
			idx := c.memoOff[d] + int(c.DS.CategoryRank(int(fixed)))
			c.memo[idx] = c.attrSimDirect(d, fixed)
			computed++
			continue
		}
		for r, pos := range c.DS.CategoryObjects(c.Ex.Categories[d]) {
			c.memo[c.memoOff[d]+r] = c.attrSimDirect(d, pos)
			computed++
		}
	}
	// Lazy fills that happened before the eager pass are already counted
	// in memoMisses; don't double-report them.
	computed -= c.memoMisses
	c.memoShared = true
	return computed
}

// MemoShared reports whether the memo is in eager read-only mode (workers
// then count their own hits; see MemoCounters).
func (c *Context) MemoShared() bool { return c.memoShared }

// MemoCounters returns the lazy-mode hit/miss counts. In shared mode the
// misses are returned by PrepareMemoShared and hits are counted by the
// callers (every AttrSim against a complete table is a hit).
func (c *Context) MemoCounters() (hits, misses int64) {
	return c.memoHits, c.memoMisses
}

// SpatialSim returns SIMs between the example and a tuple given the tuple's
// distance vector y (prefix-friendly order).
//
//seq:hotpath
func (c *Context) SpatialSim(y []float64) float64 {
	return vectormath.Cos(c.X, y)
}

// Combine merges a spatial similarity and a mean attribute similarity into
// the tuple similarity SIM = alpha*SIMs + (1-alpha)*SIMa.
//
//seq:hotpath
func (c *Context) Combine(sims, sima float64) float64 {
	return c.Alpha*sims + (1-c.Alpha)*sima
}

// NormOK reports whether a tuple norm satisfies the beta constraint.
//
//seq:hotpath
func (c *Context) NormOK(norm float64) bool {
	return geo.NormOK(norm, c.Norm, c.Beta)
}

// Scratch carries reusable per-search buffers so the DFS allocates nothing
// per candidate.
type Scratch struct {
	// Y is the partial (masked) distance vector of the current prefix.
	Y []float64
	// Locs are the locations of the current prefix.
	Locs []geo.Point
	// AttrSims are the per-dimension attribute sims of the current prefix.
	AttrSims []float64
	// active mirrors Context.Active (nil = every pair participates).
	active []bool
	// metric mirrors Context.Metric (nil = Euclidean).
	metric query.Metric
}

// NewScratch sizes a scratch for tuple size m with every pair active.
// Prefer Context.NewScratch, which carries the query's pair mask.
func NewScratch(m int) *Scratch {
	return &Scratch{
		Y:        make([]float64, 0, geo.PairCount(m)),
		Locs:     make([]geo.Point, 0, m),
		AttrSims: make([]float64, 0, m),
	}
}

// NewScratch returns a scratch wired to this query's pair mask and metric.
func (c *Context) NewScratch() *Scratch {
	s := NewScratch(c.M)
	s.active = c.Active
	s.metric = c.Metric
	return s
}

// Push extends the prefix with an object location, appending its distances
// to all previous prefix points (active pairs only) to Y. It returns the
// number of distance entries added (for the matching Pop).
//
//seq:hotpath
func (s *Scratch) Push(loc geo.Point, attrSim float64) int {
	added := 0
	dim := len(s.Locs)
	for i, p := range s.Locs {
		if s.active != nil && !s.active[geo.PairIndex(i, dim)] {
			continue
		}
		d := p.Dist(loc)
		if s.metric != nil {
			d = s.metric.Dist(p, loc)
		}
		//lint:ignore hotpathalloc appends into NewScratch's PairCount(m)-capacity buffer; never grows
		s.Y = append(s.Y, d)
		added++
	}
	//lint:ignore hotpathalloc appends into NewScratch's m-capacity buffer; never grows
	s.Locs = append(s.Locs, loc)
	//lint:ignore hotpathalloc appends into NewScratch's m-capacity buffer; never grows
	s.AttrSims = append(s.AttrSims, attrSim)
	return added
}

// Pop undoes a Push that added n distance entries.
//
//seq:hotpath
func (s *Scratch) Pop(n int) {
	s.Y = s.Y[:len(s.Y)-n]
	s.Locs = s.Locs[:len(s.Locs)-1]
	s.AttrSims = s.AttrSims[:len(s.AttrSims)-1]
}

// Reset clears the scratch.
func (s *Scratch) Reset() {
	s.Y = s.Y[:0]
	s.Locs = s.Locs[:0]
	s.AttrSims = s.AttrSims[:0]
}

// PrefixNorm returns the norm of the partial distance vector.
//
//seq:hotpath
func (s *Scratch) PrefixNorm() float64 {
	return geo.Norm(s.Y)
}

// AttrSum returns the sum of prefix attribute sims.
//
//seq:hotpath
func (s *Scratch) AttrSum() float64 {
	var t float64
	for _, v := range s.AttrSims {
		t += v
	}
	return t
}

// SpatialBoundEq5 is DFS-Prune's completion bound (paper Eq. 5): given the
// known prefix distances y (the first u = len(y) entries of the candidate's
// distance vector), the cosine against the example cannot exceed
//
//	sqrt(A^2/C + sum_{j>=u} x'_j^2),  A = sum x'_j y_j, C = sum y_j^2.
//
// The result is clamped to [0, 1].
//
// A degenerate example (||V_t*|| = 0, XNormed all zeros) makes the bound
// vacuous: the formula would return 0, yet a tuple whose points all
// coincide has SIMs = Cos(0, 0) = 1 by convention, so 0 is not an upper
// bound. Return 1 in that case, matching SpatialBoundEq9's convention
// (correct, merely without pruning power).
//
//seq:hotpath
func (c *Context) SpatialBoundEq5(y []float64) float64 {
	if c.Norm == 0 {
		return 1
	}
	u := len(y)
	var a, cc float64
	for j, v := range y {
		a += c.XNormed[j] * v
		cc += v * v
	}
	var bound float64
	if cc == 0 {
		bound = math.Sqrt(c.SuffixSq[u])
	} else {
		bound = math.Sqrt(a*a/cc + c.SuffixSq[u])
	}
	return clamp01(bound)
}

// SpatialBoundEq9 is HSP's norm-constrained refinement (paper Eq. 9):
//
//	SIMs <= beta*A/||V_t*||_rel + sqrt(sum_{j>=u} x'_j^2) * sqrt(1 - C/(beta^2*||V_t*||^2))
//
// where A and C are as in Eq. 5. It requires a finite beta and a positive
// example norm; otherwise it returns 1 (vacuous). If the prefix norm
// already exceeds beta*||V_t*|| no completion can satisfy the constraint
// and the function returns -Inf so callers prune unconditionally.
//
//seq:hotpath
func (c *Context) SpatialBoundEq9(y []float64) float64 {
	if math.IsInf(c.Beta, 1) || c.Norm == 0 {
		return 1
	}
	u := len(y)
	var a, cc float64
	for j, v := range y {
		a += c.XNormed[j] * v
		cc += v * v
	}
	limit := c.Beta * c.Norm
	if cc > limit*limit {
		return math.Inf(-1)
	}
	rem := 1 - cc/(limit*limit)
	if rem < 0 {
		rem = 0
	}
	bound := c.Beta*a/c.Norm + math.Sqrt(c.SuffixSq[u])*math.Sqrt(rem)
	return clamp01(bound)
}

// SpatialBound returns the tighter of Eq. 5 and Eq. 9 for the prefix y, as
// HSP does ("we select the upper bound as the tighter one"). -Inf signals
// that the prefix cannot be completed into a beta-feasible tuple.
//
//seq:hotpath
func (c *Context) SpatialBound(y []float64) float64 {
	b9 := c.SpatialBoundEq9(y)
	if math.IsInf(b9, -1) {
		return b9
	}
	b5 := c.SpatialBoundEq5(y)
	if b9 < b5 {
		return b9
	}
	return b5
}

// AttrBoundLoose is DFS-Prune's attribute bound: the prefix contributes its
// actual sims, every unseen dimension is bounded by 1. attrSum is the sum
// over the first i dimensions; the result is the bound on the mean.
//
//seq:hotpath
func (c *Context) AttrBoundLoose(attrSum float64, i int) float64 {
	return (attrSum + float64(c.M-i)) / float64(c.M)
}

// AttrBoundRefined is HSP's Eq. 6: unseen dimensions are bounded by the
// per-subspace maxima rbar[j] instead of 1. rbarSuffix[j] must hold
// sum_{d>=j} rbar[d] (and rbarSuffix[M] = 0).
//
//seq:hotpath
func (c *Context) AttrBoundRefined(attrSum float64, i int, rbarSuffix []float64) float64 {
	return (attrSum + rbarSuffix[i]) / float64(c.M)
}

// TupleSim computes the full similarity of a completed tuple given its
// distance vector y and per-dimension attribute sims. It does not check the
// norm constraint; callers gate on NormOK first.
//
//seq:hotpath
func (c *Context) TupleSim(y, attrSims []float64) float64 {
	var asum float64
	for _, v := range attrSims {
		asum += v
	}
	return c.Combine(c.SpatialSim(y), asum/float64(len(attrSims)))
}

// SimOfPositions scores an arbitrary tuple of dataset positions against the
// example — the reference implementation used by brute force and by tests.
// ok is false when the tuple violates the beta-norm constraint or repeats
// an object.
func (c *Context) SimOfPositions(tuple []int32) (sim float64, ok bool) {
	for i := 0; i < len(tuple); i++ {
		for j := i + 1; j < len(tuple); j++ {
			if tuple[i] == tuple[j] {
				return 0, false
			}
		}
	}
	attr := make([]float64, len(tuple))
	for d, pos := range tuple {
		attr[d] = c.AttrSim(d, pos)
	}
	y := c.DistVectorOfPositions(tuple, nil)
	if !c.NormOK(geo.Norm(y)) {
		return 0, false
	}
	return c.TupleSim(y, attr), true
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
