// Blocked batch kernels for attribute similarity and distance vectors.
// The scalar paths (AttrSim, DistVectorOfPositions) process one
// candidate per call — a memo branch plus a dot product each. The batch
// forms below process cache-sized blocks of candidates in tight loops
// over the dataset's contiguous SoA rows, with the memo consulted per
// candidate but the uncached cosines computed by one blocked
// vectormath.DotsAt sweep. Every kernel is bit-for-bit identical to the
// scalar path it replaces (same accumulation order, same memo fill and
// counter sequence); the oracle tests in batch_test.go pin that down.
package simil

import (
	"spatialseq/internal/geo"
	"spatialseq/internal/vectormath"
)

// batchBlock is the block length of the batched kernels: 256 candidates
// keep the dot-product working set (256 attr rows plus the outputs)
// inside L1/L2 for the attribute dimensionalities this system uses
// while amortising loop overhead.
const batchBlock = 256

// AttrSimBatch writes AttrSim(dim, positions[i]) into dst[i] for every
// position. dst must have len(positions). Results, memo fills and memo
// counters are bit-for-bit identical to calling AttrSim in index order:
//
//   - no memo: blocked DotsAt over the flat attribute matrix plus the
//     prenormed cosine — the pure batch fast path;
//   - lazy memo (EnableMemo): falls back to scalar AttrSim per position
//     so the single-goroutine fill order and hit/miss counts are
//     exactly the scalar sequence;
//   - shared memo (PrepareMemoShared): read-only table lookups, with
//     the direct kernel covering entries the eager pass left unfilled
//     (dimensions pinned to a fixed object memoise only that object).
//
//seq:hotpath
func (c *Context) AttrSimBatch(dim int, positions []int32, dst []float64) {
	if len(dst) != len(positions) {
		//lint:ignore panicfree hot-path invariant guard, same discipline as vectormath.Dot
		panic("simil: AttrSimBatch length mismatch")
	}
	if c.memo == nil {
		c.attrSimBatchDirect(dim, positions, dst)
		return
	}
	if !c.memoShared {
		for i, pos := range positions {
			dst[i] = c.AttrSim(dim, pos)
		}
		return
	}
	cat := c.Ex.Categories[dim]
	off := c.memoOff[dim]
	for i, pos := range positions {
		if c.DS.Category(int(pos)) == cat {
			//lint:ignore floatcmp v == v is the canonical NaN-sentinel test (false iff v is NaN), not a value comparison
			if v := c.memo[off+int(c.DS.CategoryRank(int(pos)))]; v == v {
				dst[i] = v
				continue
			}
		}
		dst[i] = c.attrSimDirect(dim, pos)
	}
}

// attrSimBatchDirect is the uncached blocked kernel: per block, one
// DotsAt sweep over the contiguous attribute rows, then the prenormed
// cosine in place. Identical accumulation order to attrSimDirect per
// candidate, so each output matches the scalar call bit-for-bit.
//
//seq:hotpath
func (c *Context) attrSimBatchDirect(dim int, positions []int32, dst []float64) {
	q := c.Ex.Attrs[dim]
	qn := c.exNorms[dim]
	flat, stride := c.DS.AttrsFlat()
	for lo := 0; lo < len(positions); lo += batchBlock {
		hi := lo + batchBlock
		if hi > len(positions) {
			hi = len(positions)
		}
		vectormath.DotsAt(dst[lo:hi], q, flat, stride, positions[lo:hi])
		for i := lo; i < hi; i++ {
			dst[i] = vectormath.CosPrenormed(dst[i], qn, c.DS.AttrNorm(int(positions[i])))
		}
	}
}

// BatchScratch carries the reusable position/similarity buffers of
// CandidatesBatchInto so steady-state calls allocate nothing.
type BatchScratch struct {
	pos  []int32
	sims []float64
}

// CandidatesBatchInto is the batched form of CandidatesInto: it filters
// positions to dim's category, scores the survivors with AttrSimBatch,
// appends them to dst and sorts. Output is element-for-element
// identical to CandidatesInto (same filter order, same sims, same
// sort), under every memo mode.
func (c *Context) CandidatesBatchInto(dst []Cand, dim int, positions []int32, bs *BatchScratch) []Cand {
	cat := c.Ex.Categories[dim]
	bs.pos = bs.pos[:0]
	for _, pos := range positions {
		if c.DS.Category(int(pos)) == cat {
			bs.pos = append(bs.pos, pos)
		}
	}
	if len(bs.pos) == 0 {
		return dst
	}
	if cap(bs.sims) < len(bs.pos) {
		bs.sims = make([]float64, len(bs.pos))
	}
	sims := bs.sims[:len(bs.pos)]
	c.AttrSimBatch(dim, bs.pos, sims)
	for i, pos := range bs.pos {
		dst = append(dst, Cand{Pos: pos, Sim: sims[i]})
	}
	SortCandidates(dst)
	return dst
}

// DistVectorsOfPositions is the blocked form of DistVectorOfPositions:
// tuples holds rows*m positions (row-major) and the result holds one
// Pairs-length masked distance vector per row, row r at
// dst[r*Pairs:(r+1)*Pairs]. On the common path (no skipped pairs,
// Euclidean metric) it runs one geo.DistVectorsAt sweep over the SoA
// coordinate slices; each row is bit-identical to the scalar call.
// dst is resized as needed and returned.
//
//seq:hotpath
func (c *Context) DistVectorsOfPositions(tuples []int32, m int, dst []float64) []float64 {
	if c.Active == nil && c.Metric == nil {
		xs, ys := c.DS.Coords()
		return geo.DistVectorsAt(xs, ys, tuples, m, dst)
	}
	dst = dst[:0]
	if m <= 0 {
		return dst
	}
	for r := 0; r*m < len(tuples); r++ {
		tuple := tuples[r*m : r*m+m]
		for j := 1; j < m; j++ {
			pj := c.DS.Loc(int(tuple[j]))
			for i := 0; i < j; i++ {
				if c.Active == nil || c.Active[geo.PairIndex(i, j)] {
					//lint:ignore hotpathalloc appends into the caller's reused dst; capacity is amortised after the first block
					dst = append(dst, c.Dist(c.DS.Loc(int(tuple[i])), pj))
				}
			}
		}
	}
	return dst
}
