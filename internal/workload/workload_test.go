package workload

import (
	"math/rand"
	"testing"

	"spatialseq/internal/geo"
	"spatialseq/internal/query"
	"spatialseq/internal/testutil"
)

func baseParams() query.Params {
	return query.Params{K: 5, Alpha: 0.5, Beta: 1.5, GridD: 5, Xi: 10}
}

func TestGenerateRandomMode(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	ds := testutil.RandDataset(rng, 500, 4, 4, 100)
	qs, err := Generate(ds, Config{Count: 25, M: 3, Mode: Random, Params: baseParams(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 25 {
		t.Fatalf("got %d queries", len(qs))
	}
	for i, q := range qs {
		if err := q.Validate(ds); err != nil {
			t.Errorf("query %d invalid: %v", i, err)
		}
		if q.Example.M() != 3 {
			t.Errorf("query %d has m=%d", i, q.Example.M())
		}
		if q.Example.Norm() == 0 {
			t.Errorf("query %d has degenerate example", i)
		}
	}
}

func TestGenerateDistanceBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	ds := testutil.RandDataset(rng, 2000, 4, 4, 200)
	scale := 25.0
	qs, err := Generate(ds, Config{Count: 20, M: 3, Mode: DistanceBounded, Scale: scale, Params: baseParams(), Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		// all example objects within a scale-sized window
		r := geo.RectFromPoints(q.Example.Locations)
		if r.Width() > scale+1e-9 || r.Height() > scale+1e-9 {
			t.Errorf("query %d example spans %gx%g, exceeds window %g", i, r.Width(), r.Height(), scale)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	ds := testutil.RandDataset(rng, 500, 4, 4, 100)
	cfg := Config{Count: 10, M: 3, Mode: Random, Params: baseParams(), Seed: 9}
	a, err := Generate(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for d := 0; d < a[i].Example.M(); d++ {
			if a[i].Example.Locations[d] != b[i].Example.Locations[d] {
				t.Fatal("same seed must yield the same workload")
			}
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	ds := testutil.RandDataset(rng, 50, 2, 4, 100)
	bad := []Config{
		{Count: 0, M: 3, Params: baseParams()},
		{Count: 5, M: 1, Params: baseParams()},
		{Count: 5, M: 3, Mode: DistanceBounded, Scale: 0, Params: baseParams()},
		{Count: 5, M: 3, FixedDims: []int{7}, Params: baseParams()},
	}
	for i, cfg := range bad {
		if _, err := Generate(ds, cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}

func TestGenerateFixedDims(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	ds := testutil.RandDataset(rng, 800, 3, 4, 100)
	qs, err := Generate(ds, Config{
		Count: 10, M: 5, Mode: Random, Params: baseParams(),
		Variant: query.CSEQFP, FixedDims: []int{0, 2}, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		if q.Variant != query.CSEQFP {
			t.Errorf("query %d variant = %v", i, q.Variant)
		}
		if len(q.Example.Fixed) != 2 {
			t.Errorf("query %d has %d pins", i, len(q.Example.Fixed))
		}
		for _, f := range q.Example.Fixed {
			obj := ds.Object(int(f.Obj))
			if obj.Category != q.Example.Categories[f.Dim] {
				t.Errorf("query %d pin category mismatch", i)
			}
			if obj.Loc != q.Example.Locations[f.Dim] {
				t.Errorf("query %d pin must be the drawn example object", i)
			}
		}
	}
}

func TestScaledExamples(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	ds := testutil.RandDataset(rng, 5000, 3, 4, 200)
	targets := []float64{5, 20, 60}
	sets, err := ScaledExamples(ds, 8, 3, baseParams(), targets, 4)
	if err != nil {
		t.Fatal(err)
	}
	var prevMean float64
	for _, target := range targets {
		qs := sets[target]
		if len(qs) != 8 {
			t.Fatalf("target %g: %d queries", target, len(qs))
		}
		var mean float64
		for _, q := range qs {
			n := q.Example.Norm()
			if n < 0.5*target || n > 1.5*target*3 {
				t.Errorf("target %g: norm %g outside tolerance", target, n)
			}
			mean += n
		}
		mean /= float64(len(qs))
		if mean <= prevMean {
			t.Errorf("mean norm should grow with the target: %g after %g", mean, prevMean)
		}
		prevMean = mean
	}
	if _, err := ScaledExamples(ds, 5, 3, baseParams(), []float64{-1}, 1); err == nil {
		t.Error("negative target should be rejected")
	}
}

func TestGenerateEmptyDataset(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	_ = rng
	ds := testutil.RandDataset(rand.New(rand.NewSource(58)), 1, 1, 2, 10)
	// m=2 on a 1-object dataset can never draw distinct points
	if _, err := Generate(ds, Config{Count: 1, M: 2, Mode: Random, Params: baseParams()}); err == nil {
		t.Error("impossible draw should be reported")
	}
}
