// Package workload generates the query sets of the paper's evaluation
// (Section IV, "Queries"): for each test, 100 example queries whose objects
// carry categories, locations and attribute profiles drawn from the
// dataset.
//
// Two drawing modes mirror the paper:
//
//   - Random (Yelp mode): example objects are sampled uniformly from the
//     dataset — appropriate for a small spatial extent.
//   - DistanceBounded (Gaode mode): the example objects are drawn from a
//     bounded window so the examples stay meaningful on a metropolitan
//     extent; the window size controls the example scale ||V_t*|| (and is
//     the knob behind the Fig. 9(f) scale sweep).
//
// Examples are built from real dataset objects (their category, location
// and attributes), so a query always has at least one perfect-attribute
// candidate per dimension — the same property real user examples have when
// "the example is available in hand from the user's experience".
package workload

import (
	"fmt"
	"math/rand"

	"spatialseq/internal/dataset"
	"spatialseq/internal/geo"
	"spatialseq/internal/query"
)

// Mode selects how example objects are drawn.
type Mode int

const (
	// Random draws example objects uniformly (Yelp-style).
	Random Mode = iota
	// DistanceBounded draws example objects within a window of Scale
	// kilometres (Gaode-style).
	DistanceBounded
)

// Config controls a generated query set.
type Config struct {
	// Count is the number of queries (paper: 100).
	Count int
	// M is the tuple size (paper default 3).
	M int
	// Mode selects the drawing strategy.
	Mode Mode
	// Scale is the window side for DistanceBounded mode, in the dataset's
	// coordinate unit. Ignored by Random mode.
	Scale float64
	// Params are attached to every query.
	Params query.Params
	// Variant is attached to every query. For CSEQFP, FixedDims chooses
	// which dimensions are pinned to the drawn example objects.
	Variant query.Variant
	// FixedDims lists dimensions pinned to the drawn objects (CSEQ-FP).
	FixedDims []int
	// AttrJitter perturbs the drawn objects' attribute vectors with
	// uniform noise of this magnitude (clamped to stay non-negative).
	// Real users state *desired* attributes in the example panel rather
	// than copying an existing object verbatim; jitter models that, and
	// it removes the artificial perfect-match candidate a verbatim draw
	// would plant in every query. Zero disables it.
	AttrJitter float64
	// LocJitter displaces each drawn location by up to this distance in
	// each axis (uniform). Users compose examples by clicking map
	// positions (paper Fig. 2), so example geometry generally cannot be
	// matched exactly by any real tuple — which is precisely what keeps
	// the exact algorithms' thresholds below their optimistic bounds.
	// Zero disables it.
	LocJitter float64
	// Seed drives the draw.
	Seed int64
}

// Generate draws a query set against ds. Dimensions are assigned the
// categories of the drawn objects, so every query is satisfiable by
// construction (the example objects themselves form one candidate tuple,
// possibly among many).
func Generate(ds *dataset.Dataset, cfg Config) ([]*query.Query, error) {
	if ds.Len() == 0 {
		return nil, fmt.Errorf("workload: empty dataset")
	}
	if cfg.Count <= 0 {
		return nil, fmt.Errorf("workload: Count must be positive, got %d", cfg.Count)
	}
	if cfg.M < 2 {
		return nil, fmt.Errorf("workload: M must be >= 2, got %d", cfg.M)
	}
	if cfg.Mode == DistanceBounded && cfg.Scale <= 0 {
		return nil, fmt.Errorf("workload: DistanceBounded mode needs a positive Scale")
	}
	for _, d := range cfg.FixedDims {
		if d < 0 || d >= cfg.M {
			return nil, fmt.Errorf("workload: fixed dim %d out of range [0,%d)", d, cfg.M)
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	queries := make([]*query.Query, 0, cfg.Count)
	const maxAttempts = 200
	for len(queries) < cfg.Count {
		q, ok := draw(ds, cfg, rng)
		if !ok {
			return nil, fmt.Errorf("workload: could not draw a query after %d attempts (scale %g too small?)", maxAttempts, cfg.Scale)
		}
		queries = append(queries, q)
	}
	return queries, nil
}

func draw(ds *dataset.Dataset, cfg Config, rng *rand.Rand) (*query.Query, bool) {
	const maxAttempts = 200
	for attempt := 0; attempt < maxAttempts; attempt++ {
		positions, ok := drawPositions(ds, cfg, rng)
		if !ok {
			continue
		}
		ex := query.Example{
			Categories: make([]dataset.CategoryID, cfg.M),
			Locations:  make([]geo.Point, cfg.M),
			Attrs:      make([][]float64, cfg.M),
		}
		for d, pos := range positions {
			o := ds.Object(int(pos))
			ex.Categories[d] = o.Category
			ex.Locations[d] = o.Loc
			if cfg.LocJitter > 0 {
				ex.Locations[d].X += (rng.Float64()*2 - 1) * cfg.LocJitter
				ex.Locations[d].Y += (rng.Float64()*2 - 1) * cfg.LocJitter
			}
			attr := make([]float64, len(o.Attr))
			copy(attr, o.Attr)
			if cfg.AttrJitter > 0 {
				for i := range attr {
					attr[i] += (rng.Float64()*2 - 1) * cfg.AttrJitter
					if attr[i] < 0.01 {
						attr[i] = 0.01
					}
				}
			}
			ex.Attrs[d] = attr
		}
		// A degenerate example (zero norm) breaks the similarity model;
		// redraw.
		if ex.Norm() == 0 {
			continue
		}
		for _, d := range cfg.FixedDims {
			ex.Fixed = append(ex.Fixed, query.FixedPoint{Dim: d, Obj: positions[d]})
		}
		q := &query.Query{Variant: cfg.Variant, Example: ex, Params: cfg.Params}
		if err := q.Validate(ds); err != nil {
			continue
		}
		return q, true
	}
	return nil, false
}

// drawPositions picks cfg.M distinct objects according to the mode.
func drawPositions(ds *dataset.Dataset, cfg Config, rng *rand.Rand) ([]int32, bool) {
	switch cfg.Mode {
	case Random:
		if ds.Len() < cfg.M {
			return nil, false
		}
		seen := make(map[int32]bool, cfg.M)
		out := make([]int32, 0, cfg.M)
		for len(out) < cfg.M {
			p := int32(rng.Intn(ds.Len()))
			if seen[p] {
				continue
			}
			seen[p] = true
			out = append(out, p)
		}
		return out, true
	case DistanceBounded:
		// anchor on a random object, then collect distinct objects inside
		// the window centred on it.
		anchor := ds.Object(rng.Intn(ds.Len()))
		half := cfg.Scale / 2
		win := geo.Rect{
			MinX: anchor.Loc.X - half, MinY: anchor.Loc.Y - half,
			MaxX: anchor.Loc.X + half, MaxY: anchor.Loc.Y + half,
		}
		var inWin []int32
		for i := 0; i < ds.Len(); i++ {
			if win.Contains(ds.Object(i).Loc) {
				inWin = append(inWin, int32(i))
			}
		}
		if len(inWin) < cfg.M {
			return nil, false
		}
		rng.Shuffle(len(inWin), func(i, j int) { inWin[i], inWin[j] = inWin[j], inWin[i] })
		return inWin[:cfg.M], true
	default:
		return nil, false
	}
}

// ScaledExamples draws query sets whose example norms land near the given
// target scales (the Fig. 9(f) sweep): for each target it uses
// DistanceBounded mode with a window proportional to the target and keeps
// queries whose ||V_t*|| falls within [0.5, 1.5]x the target.
func ScaledExamples(ds *dataset.Dataset, count, m int, params query.Params, targets []float64, seed int64) (map[float64][]*query.Query, error) {
	out := make(map[float64][]*query.Query, len(targets))
	rng := rand.New(rand.NewSource(seed))
	for _, target := range targets {
		if target <= 0 {
			return nil, fmt.Errorf("workload: scale target must be positive, got %g", target)
		}
		cfg := Config{
			Count:  count, // drawn below; Config reused for its fields
			M:      m,
			Mode:   DistanceBounded,
			Scale:  target, // window side ~ target scale
			Params: params,
		}
		var qs []*query.Query
		attempts := 0
		for len(qs) < count && attempts < count*500 {
			attempts++
			q, ok := draw(ds, cfg, rng)
			if !ok {
				break
			}
			n := q.Example.Norm()
			if n >= 0.5*target && n <= 1.5*target*float64(m) {
				qs = append(qs, q)
			}
		}
		if len(qs) < count {
			return nil, fmt.Errorf("workload: only drew %d/%d queries at scale %g", len(qs), count, target)
		}
		out[target] = qs
	}
	return out, nil
}
