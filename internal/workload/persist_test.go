package workload

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"spatialseq/internal/geo"
	"spatialseq/internal/query"
	"spatialseq/internal/testutil"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(181))
	ds := testutil.RandDataset(rng, 300, 4, 4, 100)
	qs, err := Generate(ds, Config{
		Count: 8, M: 3, Mode: Random, Params: baseParams(),
		Variant: query.CSEQFP, FixedDims: []int{1}, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	qs[0].Example.SkipPairs = [][2]int{{0, 2}}

	var buf bytes.Buffer
	if err := Save(&buf, ds, qs); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf, ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(qs) {
		t.Fatalf("round trip count = %d, want %d", len(got), len(qs))
	}
	for i := range qs {
		a, b := qs[i], got[i]
		if a.Variant != b.Variant {
			t.Errorf("query %d variant diverged", i)
		}
		if a.Params != b.Params {
			t.Errorf("query %d params diverged: %+v vs %+v", i, a.Params, b.Params)
		}
		for d := 0; d < a.Example.M(); d++ {
			if a.Example.Categories[d] != b.Example.Categories[d] {
				t.Errorf("query %d dim %d category diverged", i, d)
			}
			if a.Example.Locations[d] != b.Example.Locations[d] {
				t.Errorf("query %d dim %d location diverged", i, d)
			}
		}
		if len(a.Example.Fixed) != len(b.Example.Fixed) {
			t.Errorf("query %d pins diverged", i)
		}
	}
	if len(got[0].Example.SkipPairs) != 1 {
		t.Error("skip pairs lost in round trip")
	}
}

func TestSaveRejectsMetric(t *testing.T) {
	rng := rand.New(rand.NewSource(182))
	ds := testutil.RandDataset(rng, 50, 2, 4, 100)
	qs, err := Generate(ds, Config{Count: 1, M: 2, Mode: Random, Params: baseParams(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	qs[0].Example.Metric = fakeMetric{}
	var buf bytes.Buffer
	if err := Save(&buf, ds, qs); err == nil {
		t.Error("metric queries must not serialise")
	}
}

type fakeMetric struct{}

func (fakeMetric) Dist(a, b geo.Point) float64 { return a.Dist(b) }
func (fakeMetric) DominatesEuclidean() bool    { return true }

func TestLoadRejectsGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(183))
	ds := testutil.RandDataset(rng, 50, 2, 4, 100)
	cases := []string{
		"{broken",
		`{"variant":"zzz","categories":["cat-0","cat-1"],"locations":[[0,0],[1,1]],"attrs":[[1,1,1,1],[1,1,1,1]],"k":3,"alpha":0.5,"beta":2,"grid_d":4,"xi":10}`,
		`{"variant":"cseq","categories":["nope","cat-1"],"locations":[[0,0],[1,1]],"attrs":[[1,1,1,1],[1,1,1,1]],"k":3,"alpha":0.5,"beta":2,"grid_d":4,"xi":10}`,
		`{"variant":"cseq","categories":["cat-0"],"locations":[[0,0],[1,1]],"attrs":[[1,1,1,1]],"k":3,"alpha":0.5,"beta":2,"grid_d":4,"xi":10}`,
	}
	for i, c := range cases {
		if _, err := Load(strings.NewReader(c), ds); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestLoadCrossDataset(t *testing.T) {
	// a workload saved against one dataset must re-validate against the
	// target; here the pinned position exceeds the smaller dataset
	rng := rand.New(rand.NewSource(184))
	big := testutil.RandDataset(rng, 300, 2, 4, 100)
	qs, err := Generate(big, Config{
		Count: 1, M: 2, Mode: Random, Params: baseParams(),
		Variant: query.CSEQFP, FixedDims: []int{0}, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// force a pin near the end of the big dataset
	qs[0].Example.Fixed[0].Obj = int32(big.Len() - 1)
	qs[0].Example.Categories[0] = big.Object(big.Len() - 1).Category
	qs[0].Example.Locations[0] = big.Object(big.Len() - 1).Loc

	var buf bytes.Buffer
	if err := Save(&buf, big, qs); err != nil {
		t.Fatal(err)
	}
	small := testutil.RandDataset(rand.New(rand.NewSource(185)), 10, 2, 4, 100)
	if _, err := Load(&buf, small); err == nil {
		t.Error("loading against an incompatible dataset should fail")
	}
}

func TestSaveLoadFile(t *testing.T) {
	rng := rand.New(rand.NewSource(186))
	ds := testutil.RandDataset(rng, 100, 3, 4, 100)
	qs, err := Generate(ds, Config{Count: 3, M: 2, Mode: Random, Params: baseParams(), Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "queries.jsonl")
	if err := SaveFile(path, ds, qs); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path, ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Errorf("loaded %d queries", len(got))
	}
	if _, err := LoadFile(path+".missing", ds); err == nil {
		t.Error("missing file should error")
	}
}
