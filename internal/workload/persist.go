package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"spatialseq/internal/dataset"
	"spatialseq/internal/geo"
	"spatialseq/internal/query"
)

// Query sets serialise as JSON Lines (one query per line) so huge
// workloads stream without holding the encoder state, and diffs stay
// line-oriented. Custom metrics are not serialisable and are rejected.

// persistedQuery is the JSON shape of one query.
type persistedQuery struct {
	Variant    string       `json:"variant"`
	K          int          `json:"k"`
	Alpha      float64      `json:"alpha"`
	Beta       float64      `json:"beta"`
	GridD      int          `json:"grid_d"`
	Xi         int          `json:"xi"`
	Categories []string     `json:"categories"`
	Locations  [][2]float64 `json:"locations"`
	Attrs      [][]float64  `json:"attrs"`
	Fixed      [][2]int64   `json:"fixed,omitempty"` // (dim, object position)
	SkipPairs  [][2]int     `json:"skip_pairs,omitempty"`
}

func variantName(v query.Variant) string {
	switch v {
	case query.SEQ:
		return "seq"
	case query.CSEQFP:
		return "cseq-fp"
	default:
		return "cseq"
	}
}

func variantFromName(s string) (query.Variant, error) {
	switch s {
	case "seq":
		return query.SEQ, nil
	case "cseq-fp":
		return query.CSEQFP, nil
	case "cseq", "":
		return query.CSEQ, nil
	default:
		return query.CSEQ, fmt.Errorf("workload: unknown variant %q", s)
	}
}

// Save writes the query set as JSON Lines. Queries with a custom Metric
// are rejected (metrics have no canonical serialisation).
func Save(w io.Writer, ds *dataset.Dataset, queries []*query.Query) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, q := range queries {
		if q.Example.Metric != nil {
			return fmt.Errorf("workload: query %d carries a custom metric and cannot be serialised", i)
		}
		pq := persistedQuery{
			Variant:   variantName(q.Variant),
			K:         q.Params.K,
			Alpha:     q.Params.Alpha,
			Beta:      q.Params.Beta,
			GridD:     q.Params.GridD,
			Xi:        q.Params.Xi,
			SkipPairs: q.Example.SkipPairs,
		}
		for d := 0; d < q.Example.M(); d++ {
			pq.Categories = append(pq.Categories, ds.CategoryName(q.Example.Categories[d]))
			loc := q.Example.Locations[d]
			pq.Locations = append(pq.Locations, [2]float64{loc.X, loc.Y})
			pq.Attrs = append(pq.Attrs, q.Example.Attrs[d])
		}
		for _, f := range q.Example.Fixed {
			pq.Fixed = append(pq.Fixed, [2]int64{int64(f.Dim), int64(f.Obj)})
		}
		if err := enc.Encode(&pq); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load parses a query set saved by Save and re-validates every query
// against ds (category names must resolve; pinned positions must exist).
func Load(r io.Reader, ds *dataset.Dataset) ([]*query.Query, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var out []*query.Query
	for i := 0; ; i++ {
		var pq persistedQuery
		if err := dec.Decode(&pq); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("workload: decoding query %d: %w", i, err)
		}
		variant, err := variantFromName(pq.Variant)
		if err != nil {
			return nil, fmt.Errorf("workload: query %d: %w", i, err)
		}
		q := &query.Query{
			Variant: variant,
			Params: query.Params{
				K: pq.K, Alpha: pq.Alpha, Beta: pq.Beta, GridD: pq.GridD, Xi: pq.Xi,
			},
		}
		if len(pq.Categories) != len(pq.Locations) || len(pq.Categories) != len(pq.Attrs) {
			return nil, fmt.Errorf("workload: query %d has inconsistent dimensions", i)
		}
		for d, name := range pq.Categories {
			cat, ok := ds.CategoryByName(name)
			if !ok {
				return nil, fmt.Errorf("workload: query %d references unknown category %q", i, name)
			}
			q.Example.Categories = append(q.Example.Categories, cat)
			q.Example.Locations = append(q.Example.Locations, geo.Point{X: pq.Locations[d][0], Y: pq.Locations[d][1]})
			q.Example.Attrs = append(q.Example.Attrs, pq.Attrs[d])
		}
		for _, f := range pq.Fixed {
			q.Example.Fixed = append(q.Example.Fixed, query.FixedPoint{Dim: int(f[0]), Obj: int32(f[1])})
		}
		q.Example.SkipPairs = pq.SkipPairs
		if err := q.Validate(ds); err != nil {
			return nil, fmt.Errorf("workload: query %d invalid against this dataset: %w", i, err)
		}
		out = append(out, q)
	}
	return out, nil
}

// SaveFile writes the query set to path.
func SaveFile(path string, ds *dataset.Dataset, queries []*query.Query) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Save(f, ds, queries); err != nil {
		_ = f.Close() // the write error takes precedence
		return err
	}
	return f.Close()
}

// LoadFile parses a query set from path.
func LoadFile(path string, ds *dataset.Dataset) ([]*query.Query, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f, ds)
}
