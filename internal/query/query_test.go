package query

import (
	"math"
	"testing"

	"spatialseq/internal/dataset"
	"spatialseq/internal/geo"
)

func smallDS(t *testing.T) *dataset.Dataset {
	t.Helper()
	b := &dataset.Builder{}
	ca := b.Category("a")
	cb := b.Category("b")
	b.Add(dataset.Object{ID: 0, Loc: geo.Point{X: 0, Y: 0}, Category: ca, Attr: []float64{0.5, 0.5}})
	b.Add(dataset.Object{ID: 1, Loc: geo.Point{X: 1, Y: 1}, Category: cb, Attr: []float64{0.2, 0.8}})
	b.Add(dataset.Object{ID: 2, Loc: geo.Point{X: 2, Y: 0}, Category: ca, Attr: []float64{0.9, 0.1}})
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func validExample() Example {
	return Example{
		Categories: []dataset.CategoryID{0, 1},
		Locations:  []geo.Point{{X: 0, Y: 0}, {X: 3, Y: 4}},
		Attrs:      [][]float64{{0.5, 0.5}, {0.3, 0.7}},
	}
}

func TestDefaultParams(t *testing.T) {
	p := DefaultParams()
	if p.K != 5 || p.Alpha != 0.5 || p.Beta != 1.5 || p.GridD != 5 || p.Xi != 10 {
		t.Errorf("DefaultParams = %+v", p)
	}
}

func TestNormalizeFillsDefaults(t *testing.T) {
	p, err := Params{}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if p != DefaultParams() {
		t.Errorf("zero params should normalize to defaults, got %+v", p)
	}
}

func TestNormalizeRejects(t *testing.T) {
	bad := []Params{
		{K: -1},
		{Alpha: 1.5},
		{Alpha: -0.2},
		{Alpha: math.NaN()},
		{Beta: 0.5},
		{Beta: math.NaN()},
		{GridD: -3},
	}
	for i, p := range bad {
		if _, err := p.Normalize(); err == nil {
			t.Errorf("params %d (%+v) should be rejected", i, p)
		}
	}
}

func TestNormalizeAcceptsInfBeta(t *testing.T) {
	p := Params{Beta: math.Inf(1)}
	got, err := p.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(got.Beta, 1) {
		t.Error("infinite beta should survive normalization")
	}
}

func TestExampleBasics(t *testing.T) {
	ex := validExample()
	if ex.M() != 2 {
		t.Errorf("M = %d", ex.M())
	}
	if n := ex.Norm(); math.Abs(n-5) > 1e-12 {
		t.Errorf("Norm = %g, want 5", n)
	}
	v := ex.DistVector()
	if len(v) != 1 || math.Abs(v[0]-5) > 1e-12 {
		t.Errorf("DistVector = %v", v)
	}
	if ex.FixedDim(0) != -1 {
		t.Error("no pins expected")
	}
	ex.Fixed = []FixedPoint{{Dim: 1, Obj: 1}}
	if ex.FixedDim(1) != 1 {
		t.Error("FixedDim should find the pin")
	}
}

func TestExampleValidate(t *testing.T) {
	ds := smallDS(t)
	ex := validExample()
	if err := ex.Validate(ds); err != nil {
		t.Fatalf("valid example rejected: %v", err)
	}

	tooSmall := Example{Categories: []dataset.CategoryID{0}, Locations: []geo.Point{{}}, Attrs: [][]float64{{0.1, 0.2}}}
	if err := tooSmall.Validate(ds); err == nil {
		t.Error("m=1 should be rejected")
	}

	mismatch := validExample()
	mismatch.Locations = mismatch.Locations[:1]
	if err := mismatch.Validate(ds); err == nil {
		t.Error("dimension mismatch should be rejected")
	}

	badCat := validExample()
	badCat.Categories[0] = 99
	if err := badCat.Validate(ds); err == nil {
		t.Error("unknown category should be rejected")
	}

	badAttrLen := validExample()
	badAttrLen.Attrs[0] = []float64{1}
	if err := badAttrLen.Validate(ds); err == nil {
		t.Error("attr length mismatch should be rejected")
	}

	badAttrVal := validExample()
	badAttrVal.Attrs[0] = []float64{-1, 0.5}
	if err := badAttrVal.Validate(ds); err == nil {
		t.Error("negative attr should be rejected")
	}

	badPinDim := validExample()
	badPinDim.Fixed = []FixedPoint{{Dim: 5, Obj: 0}}
	if err := badPinDim.Validate(ds); err == nil {
		t.Error("out-of-range pin dim should be rejected")
	}

	dupPin := validExample()
	dupPin.Fixed = []FixedPoint{{Dim: 0, Obj: 0}, {Dim: 0, Obj: 2}}
	if err := dupPin.Validate(ds); err == nil {
		t.Error("duplicate pin dim should be rejected")
	}

	badPinObj := validExample()
	badPinObj.Fixed = []FixedPoint{{Dim: 0, Obj: 99}}
	if err := badPinObj.Validate(ds); err == nil {
		t.Error("out-of-range pin object should be rejected")
	}

	wrongCatPin := validExample()
	wrongCatPin.Fixed = []FixedPoint{{Dim: 0, Obj: 1}} // object 1 is category b, dim 0 wants a
	if err := wrongCatPin.Validate(ds); err == nil {
		t.Error("category-mismatched pin should be rejected")
	}
}

func TestQueryValidate(t *testing.T) {
	ds := smallDS(t)

	q := &Query{Variant: CSEQ, Example: validExample()}
	if err := q.Validate(ds); err != nil {
		t.Fatalf("valid CSEQ rejected: %v", err)
	}
	if q.Params.K != 5 {
		t.Error("Validate should normalize params in place")
	}

	fp := &Query{Variant: CSEQFP, Example: validExample()}
	if err := fp.Validate(ds); err == nil {
		t.Error("CSEQ-FP without pins should be rejected")
	}

	pinned := &Query{Variant: CSEQ, Example: validExample()}
	pinned.Example.Fixed = []FixedPoint{{Dim: 0, Obj: 0}}
	if err := pinned.Validate(ds); err == nil {
		t.Error("pins on a non-FP variant should be rejected")
	}
}

func TestEffectiveBeta(t *testing.T) {
	q := &Query{Variant: SEQ, Params: Params{Beta: 1.5}}
	if !math.IsInf(q.EffectiveBeta(), 1) {
		t.Error("SEQ should behave as beta=+Inf")
	}
	q.Variant = CSEQ
	if q.EffectiveBeta() != 1.5 {
		t.Errorf("EffectiveBeta = %g", q.EffectiveBeta())
	}
}

func TestVariantString(t *testing.T) {
	if CSEQ.String() != "CSEQ" || SEQ.String() != "SEQ" || CSEQFP.String() != "CSEQ-FP" {
		t.Error("variant strings wrong")
	}
	if Variant(9).String() == "" {
		t.Error("unknown variant should still print")
	}
}

func TestGridDForEpsilon(t *testing.T) {
	d, err := GridDForEpsilon(0.1, 30, 10, 1.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	// maxCell = 0.1*10/(2*1.5*sqrt(6)) ≈ 0.136; D = ceil(30/0.136) = 221
	maxCell := 0.1 * 10 / (2 * 1.5 * math.Sqrt(6))
	want := int(math.Ceil(30 / maxCell))
	if d != want {
		t.Errorf("GridDForEpsilon = %d, want %d", d, want)
	}
	if _, err := GridDForEpsilon(0, 1, 1, 1, 3); err == nil {
		t.Error("eps=0 should fail")
	}
	if _, err := GridDForEpsilon(0.1, 1, 1, 1, 1); err == nil {
		t.Error("m=1 should fail")
	}
}
