package query

import (
	"math"
	"testing"

	"spatialseq/internal/dataset"
	"spatialseq/internal/geo"
)

func TestPairActive(t *testing.T) {
	ex := Example{SkipPairs: [][2]int{{0, 2}}}
	if ex.PairActive(0, 2) || ex.PairActive(2, 0) {
		t.Error("skipped pair must be inactive in both orientations")
	}
	if !ex.PairActive(0, 1) || !ex.PairActive(1, 2) {
		t.Error("other pairs stay active")
	}
}

func TestPairGraphDiameter(t *testing.T) {
	cases := []struct {
		m        int
		skip     [][2]int
		wantDiam int
		wantConn bool
	}{
		{3, nil, 1, true},
		{3, [][2]int{{0, 2}}, 2, true},                 // path 0-1-2
		{3, [][2]int{{0, 1}, {0, 2}}, 0, false},        // 0 isolated
		{4, [][2]int{{0, 2}, {0, 3}, {1, 3}}, 3, true}, // path 0-1-2-3
		{2, nil, 1, true},
	}
	for i, c := range cases {
		ex := Example{
			Categories: make([]dataset.CategoryID, c.m),
			SkipPairs:  c.skip,
		}
		// Categories length defines M; locations/attrs irrelevant here
		diam, conn := ex.PairGraphDiameter()
		if conn != c.wantConn || (conn && diam != c.wantDiam) {
			t.Errorf("case %d: diameter = %d, connected = %v; want %d, %v",
				i, diam, conn, c.wantDiam, c.wantConn)
		}
	}
}

func TestMaskedDistVectorAndNorm(t *testing.T) {
	ex := Example{
		Categories: make([]dataset.CategoryID, 3),
		Locations:  []geo.Point{{X: 0, Y: 0}, {X: 3, Y: 0}, {X: 0, Y: 4}},
		Attrs:      [][]float64{{1}, {1}, {1}},
	}
	full := ex.DistVector() // d01=3, d02=4, d12=5
	if len(full) != 3 {
		t.Fatalf("full vector = %v", full)
	}
	ex.SkipPairs = [][2]int{{0, 1}}
	masked := ex.DistVector()
	if len(masked) != 2 {
		t.Fatalf("masked vector = %v", masked)
	}
	// order: d02 then d12 (prefix-friendly with d01 skipped)
	if math.Abs(masked[0]-4) > 1e-12 || math.Abs(masked[1]-5) > 1e-12 {
		t.Errorf("masked vector = %v, want [4 5]", masked)
	}
	wantNorm := math.Sqrt(16 + 25)
	if math.Abs(ex.Norm()-wantNorm) > 1e-12 {
		t.Errorf("masked norm = %g, want %g", ex.Norm(), wantNorm)
	}
}

type doublingMetric struct{}

func (doublingMetric) Dist(a, b geo.Point) float64 { return 2 * a.Dist(b) }
func (doublingMetric) DominatesEuclidean() bool    { return true }

func TestMetricDistVector(t *testing.T) {
	ex := Example{
		Categories: make([]dataset.CategoryID, 2),
		Locations:  []geo.Point{{X: 0, Y: 0}, {X: 3, Y: 4}},
		Attrs:      [][]float64{{1}, {1}},
		Metric:     doublingMetric{},
	}
	if d := ex.Dist(ex.Locations[0], ex.Locations[1]); d != 10 {
		t.Errorf("metric Dist = %g, want 10", d)
	}
	v := ex.DistVector()
	if len(v) != 1 || v[0] != 10 {
		t.Errorf("metric DistVector = %v", v)
	}
	if n := ex.Norm(); n != 10 {
		t.Errorf("metric Norm = %g", n)
	}
}
