// Package query defines the example-based query model shared by every
// algorithm: the example tuple, the problem variants (SEQ, CSEQ, CSEQ-FP)
// and the tuning parameters of the paper's evaluation (k, alpha, beta, the
// grid resolution D and the sampling budget xi).
package query

import (
	"errors"
	"fmt"
	"math"

	"spatialseq/internal/dataset"
	"spatialseq/internal/geo"
)

// Variant selects the problem being answered.
type Variant int

const (
	// CSEQ is the norm-constrained spatial exemplar query (Definition 1).
	CSEQ Variant = iota
	// SEQ is the unconstrained original problem (beta treated as +Inf).
	SEQ
	// CSEQFP is CSEQ with fixed points: positions listed in
	// Example.Fixed must appear verbatim in every result tuple.
	CSEQFP
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case CSEQ:
		return "CSEQ"
	case SEQ:
		return "SEQ"
	case CSEQFP:
		return "CSEQ-FP"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// ParseVariant converts a variant name (as produced by Variant.String and
// stored in flight captures) back to a Variant.
func ParseVariant(s string) (Variant, error) {
	switch s {
	case "CSEQ", "cseq":
		return CSEQ, nil
	case "SEQ", "seq":
		return SEQ, nil
	case "CSEQ-FP", "cseq-fp":
		return CSEQFP, nil
	default:
		return CSEQ, fmt.Errorf("query: unknown variant %q", s)
	}
}

// Metric measures the distance between two locations. The default (a nil
// Metric) is the Euclidean distance; road networks provide travel
// distances (paper Section II-A: "applying other metrics such as
// traveling distances is possible").
type Metric interface {
	// Dist returns the distance between a and b. It must be symmetric
	// and non-negative.
	Dist(a, b geo.Point) float64
	// DominatesEuclidean reports whether Dist(a,b) >= |a-b| for all a, b.
	// HSP and LORA rely on Euclidean containment for their space
	// partitioning; a metric that does not dominate the Euclidean
	// distance forces them to search the whole space as one subspace
	// (still correct, just slower). Travel distances dominate: no route
	// is shorter than the straight line.
	DominatesEuclidean() bool
}

// Example is the user-provided example tuple t*. Each dimension carries the
// category the result object must have, the example location (for the
// distance vector) and the example attribute vector (for SIMa).
//
// The example objects themselves need not exist in the dataset — a user may
// click arbitrary map locations — which is why Example stores categories,
// locations and attributes rather than dataset positions.
type Example struct {
	Categories []dataset.CategoryID
	Locations  []geo.Point
	Attrs      [][]float64
	// Fixed lists dimensions pinned to concrete dataset objects
	// (CSEQ-FP). Nil for plain SEQ/CSEQ.
	Fixed []FixedPoint
	// SkipPairs lists dimension pairs whose distance the user does not
	// care about (the paper's "distance pairs not interested" variant):
	// those entries are dropped from both the example's and the
	// candidates' distance vectors before the spatial similarity and the
	// beta-norm constraint are computed. For CSEQ (finite beta) the
	// remaining pair graph must stay connected — otherwise no spatial
	// containment bound exists and Validate rejects the query.
	SkipPairs [][2]int
	// Metric overrides the distance function (nil = Euclidean). It
	// applies to both the example's distance vector and every candidate
	// tuple's.
	Metric Metric
}

// Dist measures the distance between two locations under the example's
// metric (Euclidean when Metric is nil).
func (e *Example) Dist(a, b geo.Point) float64 {
	if e.Metric == nil {
		return a.Dist(b)
	}
	return e.Metric.Dist(a, b)
}

// FixedPoint pins example dimension Dim to the dataset object at position
// Obj: result tuples must contain exactly that object at that dimension.
type FixedPoint struct {
	Dim int
	Obj int32
}

// M returns the tuple size m.
func (e *Example) M() int { return len(e.Categories) }

// PairActive reports whether the distance between dimensions i and j
// participates in the similarity model (true unless listed in SkipPairs).
func (e *Example) PairActive(i, j int) bool {
	for _, sp := range e.SkipPairs {
		a, b := sp[0], sp[1]
		if (a == i && b == j) || (a == j && b == i) {
			return false
		}
	}
	return true
}

// PairGraphDiameter returns the diameter (longest shortest path, in hops)
// of the active-pair graph over the example's m dimensions, and whether
// the graph is connected. With no skipped pairs the graph is complete and
// the diameter is 1. The hierarchical partitioning multiplies its radius
// by this diameter: two dimensions k hops apart can be at most
// k*beta*||V_t*|| apart in any norm-feasible tuple.
func (e *Example) PairGraphDiameter() (diam int, connected bool) {
	m := e.M()
	if m < 2 {
		return 0, true
	}
	const inf = math.MaxInt32
	dist := make([][]int, m)
	for i := range dist {
		dist[i] = make([]int, m)
		for j := range dist[i] {
			switch {
			case i == j:
				dist[i][j] = 0
			case e.PairActive(i, j):
				dist[i][j] = 1
			default:
				dist[i][j] = inf
			}
		}
	}
	for k := 0; k < m; k++ {
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				if dist[i][k] != inf && dist[k][j] != inf && dist[i][k]+dist[k][j] < dist[i][j] {
					dist[i][j] = dist[i][k] + dist[k][j]
				}
			}
		}
	}
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if dist[i][j] == inf {
				return 0, false
			}
			if dist[i][j] > diam {
				diam = dist[i][j]
			}
		}
	}
	return diam, true
}

// DistVector returns the example's distance vector V_t* in the library's
// prefix-friendly pair order, with skipped pairs omitted, under the
// example's metric.
func (e *Example) DistVector() []float64 {
	if len(e.SkipPairs) == 0 && e.Metric == nil {
		return geo.DistVector(e.Locations, nil)
	}
	var out []float64
	for j := 1; j < len(e.Locations); j++ {
		for i := 0; i < j; i++ {
			if e.PairActive(i, j) {
				out = append(out, e.Dist(e.Locations[i], e.Locations[j]))
			}
		}
	}
	return out
}

// Norm returns ||V_t*|| over the active pairs under the example's metric.
func (e *Example) Norm() float64 {
	if len(e.SkipPairs) == 0 && e.Metric == nil {
		return geo.TupleNorm(e.Locations)
	}
	return geo.Norm(e.DistVector())
}

// FixedDim returns the pinned object for dimension d, or -1.
func (e *Example) FixedDim(d int) int32 {
	for _, f := range e.Fixed {
		if f.Dim == d {
			return f.Obj
		}
	}
	return -1
}

// Validate checks the example against ds.
func (e *Example) Validate(ds *dataset.Dataset) error {
	m := e.M()
	if m < 2 {
		return fmt.Errorf("query: example must have at least 2 objects, got %d", m)
	}
	if len(e.Locations) != m || len(e.Attrs) != m {
		return fmt.Errorf("query: example dimensions disagree: %d categories, %d locations, %d attrs",
			m, len(e.Locations), len(e.Attrs))
	}
	for i, c := range e.Categories {
		if c < 0 || int(c) >= ds.NumCategories() {
			return fmt.Errorf("query: dimension %d has unknown category %d", i, c)
		}
	}
	for i, a := range e.Attrs {
		if len(a) != ds.AttrDim() {
			return fmt.Errorf("query: dimension %d has %d attributes, dataset wants %d", i, len(a), ds.AttrDim())
		}
		for _, v := range a {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return fmt.Errorf("query: dimension %d has invalid attribute %g", i, v)
			}
		}
	}
	for _, sp := range e.SkipPairs {
		if sp[0] < 0 || sp[0] >= m || sp[1] < 0 || sp[1] >= m || sp[0] == sp[1] {
			return fmt.Errorf("query: invalid skipped pair (%d,%d) for tuple size %d", sp[0], sp[1], m)
		}
	}
	if active := geo.PairCount(m) - countSkipped(e, m); active == 0 {
		return errors.New("query: all distance pairs skipped; no spatial similarity remains")
	}
	seen := make(map[int]bool, len(e.Fixed))
	for _, f := range e.Fixed {
		if f.Dim < 0 || f.Dim >= m {
			return fmt.Errorf("query: fixed point dimension %d out of range [0,%d)", f.Dim, m)
		}
		if seen[f.Dim] {
			return fmt.Errorf("query: dimension %d pinned twice", f.Dim)
		}
		seen[f.Dim] = true
		if f.Obj < 0 || int(f.Obj) >= ds.Len() {
			return fmt.Errorf("query: fixed point object %d out of range", f.Obj)
		}
		if ds.Object(int(f.Obj)).Category != e.Categories[f.Dim] {
			return fmt.Errorf("query: fixed object %d category %d does not match dimension %d category %d",
				f.Obj, ds.Object(int(f.Obj)).Category, f.Dim, e.Categories[f.Dim])
		}
	}
	return nil
}

func countSkipped(e *Example, m int) int {
	n := 0
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			if !e.PairActive(i, j) {
				n++
			}
		}
	}
	return n
}

// Params are the tuning parameters. Zero values select the paper defaults
// via Normalize.
type Params struct {
	// K is the number of results (paper default 5).
	K int
	// Alpha weighs spatial vs attribute similarity (paper default 0.5).
	Alpha float64
	// Beta is the norm constraint (paper default 1.5); +Inf or a SEQ
	// variant disables it.
	Beta float64
	// GridD is LORA's cells-per-side resolution D (paper sweeps [1,10];
	// default 5).
	GridD int
	// Xi is LORA's per-cell per-dimension sampling budget (paper
	// observes xi = 10 already accurate; default 10). Xi <= 0 disables
	// sampling (keep all points).
	Xi int
}

// DefaultParams returns the paper's default setting.
func DefaultParams() Params {
	return Params{K: 5, Alpha: 0.5, Beta: 1.5, GridD: 5, Xi: 10}
}

// Parameter ceilings enforced by Normalize. They exist so untrusted inputs
// (the HTTP API, fuzzers) cannot request absurd allocations: LORA
// materialises GridD^2 cell buckets per subspace and the top-k heap keeps K
// tuples. Both limits sit far above anything the paper sweeps (K <= 50,
// GridD in [1,10]).
const (
	// MaxK is the largest accepted result count.
	MaxK = 10000
	// MaxGridD is the largest accepted cells-per-side grid resolution.
	MaxGridD = 1024
)

// Normalize fills zero fields with defaults and validates ranges.
func (p Params) Normalize() (Params, error) {
	d := DefaultParams()
	if p.K == 0 {
		p.K = d.K
	}
	if p.Alpha == 0 {
		p.Alpha = d.Alpha
	}
	if p.Beta == 0 {
		p.Beta = d.Beta
	}
	if p.GridD == 0 {
		p.GridD = d.GridD
	}
	if p.Xi == 0 {
		p.Xi = d.Xi
	}
	if p.K < 1 || p.K > MaxK {
		return p, fmt.Errorf("query: k must be in [1,%d], got %d", MaxK, p.K)
	}
	if p.Alpha < 0 || p.Alpha > 1 || math.IsNaN(p.Alpha) {
		return p, fmt.Errorf("query: alpha must be in [0,1], got %g", p.Alpha)
	}
	if !(p.Beta >= 1) { // also rejects NaN
		return p, fmt.Errorf("query: beta must be >= 1, got %g", p.Beta)
	}
	if p.GridD < 1 || p.GridD > MaxGridD {
		return p, fmt.Errorf("query: grid resolution D must be in [1,%d], got %d", MaxGridD, p.GridD)
	}
	return p, nil
}

// GridDForEpsilon returns the smallest grid resolution D that achieves the
// Theorem 3 guarantee SIM(t_i) <= (1+eps)*SIM(t̂_i) + alpha*eps for an
// ac-subspace of side length `side`, example norm `norm`, tuple size m and
// norm constraint beta: it solves d <= eps*||V_t*|| / (2*beta*sqrt(m^2-m))
// for the cell side d = side/D.
func GridDForEpsilon(eps, side, norm, beta float64, m int) (int, error) {
	if eps <= 0 || side <= 0 || norm <= 0 || beta < 1 || m < 2 {
		return 0, errors.New("query: GridDForEpsilon needs eps, side, norm > 0, beta >= 1, m >= 2")
	}
	maxCell := eps * norm / (2 * beta * math.Sqrt(float64(m*m-m)))
	d := int(math.Ceil(side / maxCell))
	if d < 1 {
		d = 1
	}
	return d, nil
}

// Query bundles a variant, an example and parameters.
type Query struct {
	Variant Variant
	Example Example
	Params  Params
}

// EffectiveBeta returns the beta the algorithms should enforce: +Inf for
// SEQ, the configured beta otherwise.
func (q *Query) EffectiveBeta() float64 {
	if q.Variant == SEQ {
		return math.Inf(1)
	}
	return q.Params.Beta
}

// Validate normalizes parameters and checks the example against ds.
func (q *Query) Validate(ds *dataset.Dataset) error {
	p, err := q.Params.Normalize()
	if err != nil {
		return err
	}
	q.Params = p
	if q.Variant == CSEQFP && len(q.Example.Fixed) == 0 {
		return errors.New("query: CSEQ-FP requires at least one fixed point")
	}
	if q.Variant != CSEQFP && len(q.Example.Fixed) > 0 {
		return fmt.Errorf("query: fixed points given but variant is %s", q.Variant)
	}
	if err := q.Example.Validate(ds); err != nil {
		return err
	}
	if len(q.Example.SkipPairs) > 0 && !math.IsInf(q.EffectiveBeta(), 1) {
		if _, connected := q.Example.PairGraphDiameter(); !connected {
			return errors.New("query: skipped pairs disconnect the pair graph; the beta-norm constraint cannot bound the tuple extent (use SEQ or skip fewer pairs)")
		}
	}
	return nil
}
