// Package rankgraph implements the rank-representation graph of LORA's
// point-tuple enumeration (paper Section III-C2, Lemma 2, Algorithm 5).
//
// Given m lists of scores, each sorted in descending order, every
// combination (one index per list) is a graph node identified by its rank
// vector; [0,0,...,0] is the root r0. A node's out-neighbours increment a
// single rank by one. Lemma 2 shows that enumerating nodes by ascending
// shortest-path distance from r0 — with edge weight score(t) − score(v) —
// is the same as enumerating combinations by descending total score.
//
// Enumerator realises that traversal as a lazy best-first search: Next
// yields rank vectors in non-increasing total-score order, visiting each
// combination at most once, and materialises only the frontier (O(visited)
// memory rather than the full product space).
//
// The enumerator sits on LORA's innermost hot path (one instance per cell
// tuple), so it is engineered to amortise allocations: visited-set keys
// are mixed-radix integers (falling back to strings only for astronomically
// large product spaces), rank-vector storage is recycled through a
// freelist, and Reset reuses all internal state for the next cell tuple.
package rankgraph

import "math"

// Enumerator yields index combinations over m descending score lists in
// non-increasing total-score order.
type Enumerator struct {
	lists [][]float64
	pq    []node
	ranks []int32 // scratch returned by Next; callers must not retain
	free  [][]int32

	// visited set: mixed-radix integer keys when the product space fits
	// in uint64, string keys otherwise.
	strides []uint64
	seen    map[uint64]struct{}
	seenStr map[string]struct{}

	closed bool
}

type node struct {
	ranks []int32
	total float64
}

// New returns an enumerator over the given descending score lists. Any
// empty list makes the product space empty (Next returns false
// immediately). Lists are not copied; callers must not mutate them while
// enumerating. New panics if a list is not sorted descending — that would
// silently break the enumeration order invariant.
func New(lists [][]float64) *Enumerator {
	e := &Enumerator{}
	e.Reset(lists)
	return e
}

// Reset re-arms the enumerator over a new set of lists, reusing all
// internal storage. Semantics match New.
func (e *Enumerator) Reset(lists [][]float64) {
	e.lists = lists
	// reclaim the leftover frontier's rank storage before dropping it
	for _, n := range e.pq {
		//lint:ignore hotpathalloc freelist recycle; bounded by the frontier and reused across Resets
		e.free = append(e.free, n.ranks)
	}
	e.pq = e.pq[:0]
	e.closed = false
	if e.seen != nil {
		clear(e.seen)
	}
	if e.seenStr != nil {
		clear(e.seenStr)
	}

	for _, l := range lists {
		if len(l) == 0 {
			e.closed = true
			return
		}
		for i := 1; i < len(l); i++ {
			if l[i] > l[i-1] {
				//lint:ignore panicfree documented New/Reset contract: an unsorted list is a caller bug that would silently corrupt enumeration order
				panic("rankgraph: score list not sorted descending")
			}
		}
	}

	// mixed-radix strides: key = sum ranks[d]*strides[d], unique because
	// ranks[d] < len(lists[d]).
	if cap(e.strides) < len(lists) {
		//lint:ignore hotpathalloc grow-once scratch; reused across Resets
		e.strides = make([]uint64, len(lists))
	}
	e.strides = e.strides[:len(lists)]
	stride := uint64(1)
	intKeys := true
	for d, l := range lists {
		e.strides[d] = stride
		next, overflow := mulOverflow(stride, uint64(len(l)))
		if overflow {
			intKeys = false
			break
		}
		stride = next
	}
	if intKeys {
		if e.seen == nil {
			//lint:ignore hotpathalloc visited set is created once per enumerator and cleared on Reset
			e.seen = make(map[uint64]struct{})
		}
		e.seenStr = nil
	} else {
		if e.seenStr == nil {
			//lint:ignore hotpathalloc string-key fallback for overflowing product spaces; created once and cleared on Reset
			e.seenStr = make(map[string]struct{})
		}
		e.strides = e.strides[:0]
	}

	root := e.newRanks(len(lists))
	for i := range root {
		root[i] = 0
	}
	var total float64
	for _, l := range lists {
		total += l[0]
	}
	e.push(root, total)
	if cap(e.ranks) < len(lists) {
		//lint:ignore hotpathalloc grow-once scratch; reused across Resets
		e.ranks = make([]int32, len(lists))
	}
	e.ranks = e.ranks[:len(lists)]
}

// Next returns the next combination and its total score. The returned
// slice is reused between calls; copy it to retain it. ok is false when
// the space is exhausted.
func (e *Enumerator) Next() (ranks []int32, total float64, ok bool) {
	if e.closed || len(e.pq) == 0 {
		return nil, 0, false
	}
	n := e.pop()
	copy(e.ranks, n.ranks)
	// Expand out-neighbours: increment each dimension's rank by one.
	for d := range n.ranks {
		r := n.ranks[d] + 1
		if int(r) >= len(e.lists[d]) {
			continue
		}
		if e.markVisitedChild(n.ranks, d, r) {
			continue
		}
		child := e.newRanks(len(n.ranks))
		copy(child, n.ranks)
		child[d] = r
		childTotal := n.total - e.lists[d][r-1] + e.lists[d][r]
		//lint:ignore hotpathalloc frontier append; pq storage is reused across Resets, growth amortises out
		e.pq = append(e.pq, node{ranks: child, total: childTotal})
		e.up(len(e.pq) - 1)
	}
	//lint:ignore hotpathalloc freelist recycle; bounded by the frontier and reused across Resets
	e.free = append(e.free, n.ranks)
	return e.ranks, n.total, true
}

// markVisitedChild records the child of ranks with dimension d bumped to r
// in the visited set; it reports whether the child was already present.
func (e *Enumerator) markVisitedChild(ranks []int32, d int, r int32) bool {
	if e.seenStr == nil {
		var key uint64
		for i, v := range ranks {
			key += uint64(v) * e.strides[i]
		}
		key += uint64(r-ranks[d]) * e.strides[d]
		if _, dup := e.seen[key]; dup {
			return true
		}
		e.seen[key] = struct{}{}
		return false
	}
	//lint:ignore hotpathalloc string-key fallback; only for product spaces overflowing uint64 mixed-radix keys
	buf := make([]byte, 0, 4*len(ranks))
	for i, v := range ranks {
		if i == d {
			v = r
		}
		//lint:ignore hotpathalloc appends into buf's preallocated 4*m capacity; never grows
		buf = append(buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	}
	//lint:ignore hotpathalloc string-key fallback; only for product spaces overflowing uint64 mixed-radix keys
	key := string(buf)
	if _, dup := e.seenStr[key]; dup {
		return true
	}
	e.seenStr[key] = struct{}{}
	return false
}

// push inserts a node (used only for the root, which is never a duplicate).
func (e *Enumerator) push(ranks []int32, total float64) {
	//lint:ignore hotpathalloc root push, once per Reset; pq storage is reused
	e.pq = append(e.pq, node{ranks: ranks, total: total})
	e.up(len(e.pq) - 1)
}

func (e *Enumerator) newRanks(m int) []int32 {
	if n := len(e.free); n > 0 {
		s := e.free[n-1]
		e.free = e.free[:n-1]
		if cap(s) >= m {
			return s[:m]
		}
	}
	//lint:ignore hotpathalloc freelist miss; rank storage recycles, so makes amortise to zero per Next
	return make([]int32, m)
}

// pop removes and returns the max-total node.
func (e *Enumerator) pop() node {
	top := e.pq[0]
	last := len(e.pq) - 1
	e.pq[0] = e.pq[last]
	e.pq = e.pq[:last]
	if last > 0 {
		e.down(0)
	}
	return top
}

// up and down maintain a max-heap on node.total.
func (e *Enumerator) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if e.pq[parent].total >= e.pq[i].total {
			break
		}
		e.pq[parent], e.pq[i] = e.pq[i], e.pq[parent]
		i = parent
	}
}

func (e *Enumerator) down(i int) {
	n := len(e.pq)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && e.pq[l].total > e.pq[largest].total {
			largest = l
		}
		if r < n && e.pq[r].total > e.pq[largest].total {
			largest = r
		}
		if largest == i {
			return
		}
		e.pq[i], e.pq[largest] = e.pq[largest], e.pq[i]
		i = largest
	}
}

func mulOverflow(a, b uint64) (uint64, bool) {
	if a == 0 || b == 0 {
		return 0, false
	}
	c := a * b
	return c, c/b != a || c > math.MaxUint64/2 // keep headroom for key sums
}
