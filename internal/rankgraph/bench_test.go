package rankgraph

import (
	"math/rand"
	"sort"
	"testing"
)

func benchLists(m, n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	lists := make([][]float64, m)
	for d := range lists {
		l := make([]float64, n)
		for i := range l {
			l[i] = rng.Float64()
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(l)))
		lists[d] = l
	}
	return lists
}

// BenchmarkTop10 measures LORA's per-cell-tuple workload: pop the ten best
// combinations from m sorted lists of xi entries.
func BenchmarkTop10(b *testing.B) {
	for _, m := range []int{2, 3, 5} {
		lists := benchLists(m, 10, 7)
		b.Run(sizeName(m), func(b *testing.B) {
			e := New(lists)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Reset(lists)
				for p := 0; p < 10; p++ {
					if _, _, ok := e.Next(); !ok {
						break
					}
				}
			}
		})
	}
}

// BenchmarkExhaustive drains a full product space.
func BenchmarkExhaustive(b *testing.B) {
	lists := benchLists(3, 20, 9) // 8000 combinations
	e := New(lists)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Reset(lists)
		for {
			if _, _, ok := e.Next(); !ok {
				break
			}
		}
	}
}

func sizeName(m int) string {
	return "m=" + string(rune('0'+m))
}
