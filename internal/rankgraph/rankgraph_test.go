package rankgraph

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func collect(e *Enumerator, limit int) (ranksOut [][]int32, totals []float64) {
	for len(totals) < limit {
		r, total, ok := e.Next()
		if !ok {
			break
		}
		cp := make([]int32, len(r))
		copy(cp, r)
		ranksOut = append(ranksOut, cp)
		totals = append(totals, total)
	}
	return
}

func TestSingleListOrdering(t *testing.T) {
	e := New([][]float64{{0.9, 0.5, 0.1}})
	ranks, totals := collect(e, 10)
	if len(ranks) != 3 {
		t.Fatalf("got %d combinations, want 3", len(ranks))
	}
	want := []float64{0.9, 0.5, 0.1}
	for i := range want {
		if totals[i] != want[i] {
			t.Errorf("totals[%d] = %g, want %g", i, totals[i], want[i])
		}
		if ranks[i][0] != int32(i) {
			t.Errorf("ranks[%d] = %v", i, ranks[i])
		}
	}
}

func TestTwoListsExhaustiveDescending(t *testing.T) {
	lists := [][]float64{{0.8, 0.2}, {0.7, 0.6, 0.1}}
	e := New(lists)
	ranks, totals := collect(e, 100)
	if len(ranks) != 6 {
		t.Fatalf("got %d combinations, want 6", len(ranks))
	}
	for i := 1; i < len(totals); i++ {
		if totals[i] > totals[i-1]+1e-12 {
			t.Errorf("totals not non-increasing at %d: %v", i, totals)
		}
	}
	// every combination appears exactly once
	seen := map[[2]int32]bool{}
	for _, r := range ranks {
		key := [2]int32{r[0], r[1]}
		if seen[key] {
			t.Errorf("duplicate combination %v", r)
		}
		seen[key] = true
	}
	// root first
	if ranks[0][0] != 0 || ranks[0][1] != 0 {
		t.Errorf("first pop = %v, want root", ranks[0])
	}
	if math.Abs(totals[0]-1.5) > 1e-12 {
		t.Errorf("root total = %g", totals[0])
	}
}

func TestEmptyListShortCircuits(t *testing.T) {
	e := New([][]float64{{0.5}, {}})
	if _, _, ok := e.Next(); ok {
		t.Error("empty list should yield no combinations")
	}
}

func TestUnsortedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for ascending list")
		}
	}()
	New([][]float64{{0.1, 0.9}})
}

func TestTiesAllEnumerated(t *testing.T) {
	e := New([][]float64{{0.5, 0.5}, {0.5, 0.5}})
	_, totals := collect(e, 100)
	if len(totals) != 4 {
		t.Fatalf("got %d combinations with ties, want 4", len(totals))
	}
	for _, tt := range totals {
		if tt != 1.0 {
			t.Errorf("total = %g, want 1.0", tt)
		}
	}
}

func TestMatchesBruteForceOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		m := 2 + rng.Intn(3)
		lists := make([][]float64, m)
		total := 1
		for d := range lists {
			n := 1 + rng.Intn(4)
			total *= n
			l := make([]float64, n)
			for i := range l {
				l[i] = rng.Float64()
			}
			sort.Sort(sort.Reverse(sort.Float64Slice(l)))
			lists[d] = l
		}
		e := New(lists)
		_, got := collect(e, total+10)
		if len(got) != total {
			t.Fatalf("trial %d: enumerated %d of %d combinations", trial, len(got), total)
		}
		// brute force all sums, sorted descending
		var want []float64
		var rec func(d int, sum float64)
		rec = func(d int, sum float64) {
			if d == m {
				want = append(want, sum)
				return
			}
			for _, v := range lists[d] {
				rec(d+1, sum+v)
			}
		}
		rec(0, 0)
		sort.Sort(sort.Reverse(sort.Float64Slice(want)))
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("trial %d: order diverges at %d: got %g want %g", trial, i, got[i], want[i])
			}
		}
	}
}

func TestLazyFrontierDoesNotExplode(t *testing.T) {
	// 4 lists of 50 entries = 6.25M combinations; popping only 100 must
	// stay cheap and allocate only the visited frontier.
	lists := make([][]float64, 4)
	for d := range lists {
		l := make([]float64, 50)
		for i := range l {
			l[i] = 1 - float64(i)*0.01
		}
		lists[d] = l
	}
	e := New(lists)
	_, totals := collect(e, 100)
	if len(totals) != 100 {
		t.Fatalf("popped %d", len(totals))
	}
	for i := 1; i < len(totals); i++ {
		if totals[i] > totals[i-1]+1e-12 {
			t.Fatal("ordering violated")
		}
	}
	if len(e.seen) > 100*4+1 {
		t.Errorf("visited set grew to %d, expected <= pops*m+1", len(e.seen))
	}
}

func TestNextReusesRankBuffer(t *testing.T) {
	e := New([][]float64{{0.9, 0.1}})
	r1, _, _ := e.Next()
	v := r1[0]
	r2, _, _ := e.Next()
	if &r1[0] != &r2[0] {
		t.Skip("buffer reuse is an implementation detail; pointers differ")
	}
	_ = v
}
