// Package export serialises datasets and search results as GeoJSON
// (RFC 7946), the lingua franca of web map UIs: the paper's Fig. 2 panels
// ("example selection", "search results") render directly from these
// FeatureCollections.
package export

import (
	"encoding/json"
	"fmt"
	"io"

	"spatialseq/internal/core"
	"spatialseq/internal/dataset"
	"spatialseq/internal/query"
)

// featureCollection, feature and geometry model the subset of RFC 7946
// this package emits.
type featureCollection struct {
	Type     string    `json:"type"`
	Features []feature `json:"features"`
}

type feature struct {
	Type       string         `json:"type"`
	Geometry   geometry       `json:"geometry"`
	Properties map[string]any `json:"properties,omitempty"`
}

type geometry struct {
	Type        string `json:"type"`
	Coordinates any    `json:"coordinates"`
}

func pointGeom(x, y float64) geometry {
	return geometry{Type: "Point", Coordinates: [2]float64{x, y}}
}

func lineGeom(coords [][2]float64) geometry {
	return geometry{Type: "LineString", Coordinates: coords}
}

// Dataset writes ds as a FeatureCollection of Points. limit > 0 caps the
// number of features (map UIs rarely want 10M markers at once).
func Dataset(w io.Writer, ds *dataset.Dataset, limit int) error {
	n := ds.Len()
	if limit > 0 && limit < n {
		n = limit
	}
	fc := featureCollection{Type: "FeatureCollection", Features: make([]feature, 0, n)}
	for i := 0; i < n; i++ {
		o := ds.Object(i)
		fc.Features = append(fc.Features, feature{
			Type:     "Feature",
			Geometry: pointGeom(o.Loc.X, o.Loc.Y),
			Properties: map[string]any{
				"id":       o.ID,
				"name":     o.Name,
				"category": ds.CategoryName(o.Category),
				"attrs":    o.Attr,
			},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(fc)
}

// Results writes a search result as a FeatureCollection: every matched
// object becomes a Point feature tagged with its rank and dimension, and
// each tuple additionally gets a closed LineString tracing its shape (the
// dotted co-location lines of the paper's Fig. 2). The example itself is
// included with rank 0.
func Results(w io.Writer, ds *dataset.Dataset, q *query.Query, res *core.Result) error {
	fc := featureCollection{Type: "FeatureCollection"}

	addTuple := func(rank int, sim float64, locs [][2]float64, props []map[string]any) {
		for _, p := range props {
			p["rank"] = rank
			if rank > 0 {
				p["sim"] = sim
			}
		}
		for i, c := range locs {
			fc.Features = append(fc.Features, feature{
				Type:       "Feature",
				Geometry:   pointGeom(c[0], c[1]),
				Properties: props[i],
			})
		}
		if len(locs) > 1 {
			ring := append(append([][2]float64{}, locs...), locs[0])
			lineProps := map[string]any{"rank": rank, "kind": "tuple-outline"}
			if rank > 0 {
				lineProps["sim"] = sim
			}
			fc.Features = append(fc.Features, feature{
				Type:       "Feature",
				Geometry:   lineGeom(ring),
				Properties: lineProps,
			})
		}
	}

	// rank 0: the example
	exLocs := make([][2]float64, q.Example.M())
	exProps := make([]map[string]any, q.Example.M())
	for d, loc := range q.Example.Locations {
		exLocs[d] = [2]float64{loc.X, loc.Y}
		exProps[d] = map[string]any{
			"kind":     "example",
			"dim":      d,
			"category": ds.CategoryName(q.Example.Categories[d]),
		}
	}
	addTuple(0, 0, exLocs, exProps)

	for rank, t := range res.Tuples {
		locs := make([][2]float64, len(t.Positions))
		props := make([]map[string]any, len(t.Positions))
		for d, pos := range t.Positions {
			o := ds.Object(int(pos))
			locs[d] = [2]float64{o.Loc.X, o.Loc.Y}
			props[d] = map[string]any{
				"kind":     "result",
				"dim":      d,
				"id":       o.ID,
				"name":     o.Name,
				"category": ds.CategoryName(o.Category),
			}
		}
		addTuple(rank+1, t.Sim, locs, props)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(fc)
}

// Validate parses data as GeoJSON emitted by this package and returns the
// feature count — a cheap structural self-check used by tests and tooling.
func Validate(data []byte) (int, error) {
	var fc featureCollection
	if err := json.Unmarshal(data, &fc); err != nil {
		return 0, err
	}
	if fc.Type != "FeatureCollection" {
		return 0, fmt.Errorf("export: unexpected root type %q", fc.Type)
	}
	for i, f := range fc.Features {
		if f.Type != "Feature" {
			return 0, fmt.Errorf("export: feature %d has type %q", i, f.Type)
		}
		switch f.Geometry.Type {
		case "Point", "LineString":
		default:
			return 0, fmt.Errorf("export: feature %d has geometry %q", i, f.Geometry.Type)
		}
	}
	return len(fc.Features), nil
}
