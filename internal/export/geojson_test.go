package export

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"testing"

	"spatialseq/internal/core"
	"spatialseq/internal/query"
	"spatialseq/internal/testutil"
)

func TestDatasetExport(t *testing.T) {
	rng := rand.New(rand.NewSource(151))
	ds := testutil.RandDataset(rng, 30, 3, 4, 100)
	var buf bytes.Buffer
	if err := Dataset(&buf, ds, 0); err != nil {
		t.Fatal(err)
	}
	n, err := Validate(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if n != 30 {
		t.Errorf("feature count = %d, want 30", n)
	}
}

func TestDatasetExportLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(152))
	ds := testutil.RandDataset(rng, 30, 3, 4, 100)
	var buf bytes.Buffer
	if err := Dataset(&buf, ds, 7); err != nil {
		t.Fatal(err)
	}
	n, err := Validate(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if n != 7 {
		t.Errorf("feature count = %d, want 7", n)
	}
}

func TestResultsExport(t *testing.T) {
	rng := rand.New(rand.NewSource(153))
	ds := testutil.RandDataset(rng, 150, 3, 4, 100)
	eng := core.NewEngine(ds)
	q := testutil.RandQuery(rng, ds, 3, 25, query.Params{K: 3, Alpha: 0.5, Beta: 2, GridD: 4, Xi: 10})
	res, err := eng.Search(context.Background(), q, core.HSP, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) == 0 {
		t.Skip("no results to export")
	}
	var buf bytes.Buffer
	if err := Results(&buf, ds, q, res); err != nil {
		t.Fatal(err)
	}
	n, err := Validate(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	// example: m points + outline; per result: m points + outline
	want := (q.Example.M() + 1) * (len(res.Tuples) + 1)
	if n != want {
		t.Errorf("feature count = %d, want %d", n, want)
	}
	// structural spot checks
	var fc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &fc); err != nil {
		t.Fatal(err)
	}
	feats := fc["features"].([]any)
	first := feats[0].(map[string]any)
	props := first["properties"].(map[string]any)
	if props["kind"] != "example" || props["rank"].(float64) != 0 {
		t.Errorf("first feature should be the example: %v", props)
	}
}

func TestValidateRejectsGarbage(t *testing.T) {
	if _, err := Validate([]byte("{")); err == nil {
		t.Error("broken JSON should fail")
	}
	if _, err := Validate([]byte(`{"type":"Nope","features":[]}`)); err == nil {
		t.Error("wrong root type should fail")
	}
	if _, err := Validate([]byte(`{"type":"FeatureCollection","features":[{"type":"Feature","geometry":{"type":"Polygon"}}]}`)); err == nil {
		t.Error("unexpected geometry should fail")
	}
}
