package spatialseq_test

import (
	"context"
	"fmt"
	"log"

	"spatialseq"
)

// Example demonstrates the core workflow on a hand-built micro-city:
// search for an (apartment, gym) pair whose layout and attributes resemble
// a known-good example.
func Example() {
	b := &spatialseq.DatasetBuilder{}
	apt := b.Category("apartment")
	gym := b.Category("gym")
	objects := []spatialseq.Object{
		{ID: 0, Loc: spatialseq.Point{X: 0, Y: 0}, Category: apt, Attr: []float64{0.9, 0.2}, Name: "river-apartments"},
		{ID: 1, Loc: spatialseq.Point{X: 1, Y: 0}, Category: gym, Attr: []float64{0.8, 0.3}, Name: "river-gym"},
		{ID: 2, Loc: spatialseq.Point{X: 10, Y: 10}, Category: apt, Attr: []float64{0.9, 0.2}, Name: "hill-apartments"},
		{ID: 3, Loc: spatialseq.Point{X: 11, Y: 10}, Category: gym, Attr: []float64{0.8, 0.3}, Name: "hill-gym"},
		{ID: 4, Loc: spatialseq.Point{X: 20, Y: 0}, Category: apt, Attr: []float64{0.2, 0.9}, Name: "budget-apartments"},
		{ID: 5, Loc: spatialseq.Point{X: 27, Y: 0}, Category: gym, Attr: []float64{0.3, 0.8}, Name: "distant-gym"},
	}
	for _, o := range objects {
		b.Add(o)
	}
	ds, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	eng := spatialseq.NewEngine(ds)
	q := &spatialseq.Query{
		Variant: spatialseq.CSEQ,
		Example: spatialseq.Example{
			// the user's current apartment+gym: 1 km apart, quality-focused
			Categories: []spatialseq.CategoryID{apt, gym},
			Locations:  []spatialseq.Point{{X: 0, Y: 0}, {X: 1, Y: 0}},
			Attrs:      [][]float64{{0.9, 0.2}, {0.8, 0.3}},
		},
		Params: spatialseq.Params{K: 2, Alpha: 0.5, Beta: 1.5, GridD: 3, Xi: 10},
	}
	res, err := eng.Search(context.Background(), q, spatialseq.HSP, spatialseq.Options{})
	if err != nil {
		log.Fatal(err)
	}
	for rank, t := range res.Tuples {
		a := ds.Object(int(t.Positions[0]))
		g := ds.Object(int(t.Positions[1]))
		fmt.Printf("#%d %s + %s (sim %.3f)\n", rank+1, a.Name, g.Name, t.Sim)
	}
	// Output:
	// #1 river-apartments + river-gym (sim 1.000)
	// #2 hill-apartments + hill-gym (sim 1.000)
}
