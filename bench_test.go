// Benchmarks regenerating the paper's evaluation artifacts (one benchmark
// family per table / figure; see the experiment index in DESIGN.md and the
// recorded results in EXPERIMENTS.md).
//
// Per-op work is one full query (including LORA's per-query partitioning
// and cell sorting, as the paper's timing does). Queries rotate through a
// fixed workload so b.N ops average over the query set. Custom metrics:
// "sim" is the average result similarity of the last op, "mae" the mean
// absolute error against the exact answer where measured.
//
// Dataset sizes here are laptop-scale; crank them up with cmd/seqbench for
// paper-scale runs.
package spatialseq_test

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"

	"spatialseq/internal/core"
	"spatialseq/internal/eval"
	"spatialseq/internal/query"
	"spatialseq/internal/synth"
	"spatialseq/internal/workload"
)

type fixture struct {
	eng     *core.Engine
	queries []*query.Query
}

var (
	fixtureMu    sync.Mutex
	fixtureCache = map[string]*fixture{}
)

// getFixture builds (once) an engine + workload for a family/size/variant.
func getFixture(b *testing.B, family eval.Family, n int, wcMut func(*workload.Config)) *fixture {
	b.Helper()
	key := fmt.Sprintf("%v/%d/%p", family, n, wcMut)
	fixtureMu.Lock()
	defer fixtureMu.Unlock()
	if f, ok := fixtureCache[key]; ok {
		return f
	}
	var cfg synth.Config
	if family == eval.Yelp {
		cfg = synth.YelpLike(n, 1)
	} else {
		cfg = synth.GaodeLike(n, 1)
	}
	ds, err := synth.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	wc := workload.Config{
		Count:   10,
		M:       3,
		Params:  query.DefaultParams(),
		Variant: query.CSEQ,
		Seed:    2,
	}
	if family == eval.Gaode {
		wc.Mode = workload.DistanceBounded
		wc.Scale = 10
	}
	if wcMut != nil {
		wcMut(&wc)
	}
	queries, err := workload.Generate(ds, wc)
	if err != nil {
		b.Fatal(err)
	}
	f := &fixture{eng: core.NewEngine(ds), queries: queries}
	fixtureCache[key] = f
	return f
}

// runAlgo is the shared measurement loop: one op = one query.
func runAlgo(b *testing.B, f *fixture, algo core.Algorithm, opt core.Options) {
	b.Helper()
	ctx := context.Background()
	var lastSim float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := *f.queries[i%len(f.queries)]
		res, err := f.eng.Search(ctx, &q, algo, opt)
		if err != nil {
			b.Fatal(err)
		}
		var s float64
		for _, t := range res.Tuples {
			s += t.Sim
		}
		if len(res.Tuples) > 0 {
			lastSim = s / float64(len(res.Tuples))
		}
	}
	b.StopTimer()
	b.ReportMetric(lastSim, "sim")
}

// mutators must be package-level so fixture keys are stable.
var (
	wcSEQ = func(wc *workload.Config) { wc.Variant = query.SEQ }
	wcFP  = func(wc *workload.Config) {
		wc.M = 5
		wc.Variant = query.CSEQFP
		wc.FixedDims = []int{0, 2}
	}
)

// BenchmarkTable2 regenerates Table II's per-query costs. DFS-Prune is
// capped at the smallest size (it is the ">24hours" column at scale).
func BenchmarkTable2(b *testing.B) {
	for _, family := range []eval.Family{eval.Yelp, eval.Gaode} {
		for _, n := range []int{1000, 5000, 20000} {
			f := getFixture(b, family, n, nil)
			if n <= 1000 {
				b.Run(fmt.Sprintf("%v/n=%d/dfsprune", family, n), func(b *testing.B) {
					runAlgo(b, f, core.DFSPrune, core.Options{})
				})
			}
			b.Run(fmt.Sprintf("%v/n=%d/hsp", family, n), func(b *testing.B) {
				runAlgo(b, f, core.HSP, core.Options{})
			})
			b.Run(fmt.Sprintf("%v/n=%d/lora", family, n), func(b *testing.B) {
				runAlgo(b, f, core.LORA, core.Options{})
			})
		}
	}
}

// BenchmarkTable3 measures LORA with its MAE against the exact answer as a
// custom metric (Table III's error statistics).
func BenchmarkTable3(b *testing.B) {
	for _, family := range []eval.Family{eval.Yelp, eval.Gaode} {
		f := getFixture(b, family, 5000, nil)
		b.Run(fmt.Sprintf("%v/n=5000", family), func(b *testing.B) {
			ctx := context.Background()
			// exact references once, outside the timer
			exact := make([][]float64, len(f.queries))
			for i, q := range f.queries {
				qq := *q
				res, err := f.eng.Search(ctx, &qq, core.HSP, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				exact[i] = res.Similarities()
			}
			var errSum float64
			var errN int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				qi := i % len(f.queries)
				qq := *f.queries[qi]
				res, err := f.eng.Search(ctx, &qq, core.LORA, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				sims := res.Similarities()
				for j, e := range exact[qi] {
					var a float64
					if j < len(sims) {
						a = sims[j]
					}
					errSum += math.Abs(e - a)
					errN++
				}
			}
			b.StopTimer()
			if errN > 0 {
				b.ReportMetric(errSum/float64(errN), "mae")
			}
		})
	}
}

// BenchmarkFig9GridD regenerates Fig. 9(a): LORA cost versus D.
func BenchmarkFig9GridD(b *testing.B) {
	f := getFixture(b, eval.Gaode, 20000, nil)
	for _, d := range []int{1, 2, 4, 6, 8, 10} {
		b.Run(fmt.Sprintf("D=%d", d), func(b *testing.B) {
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := *f.queries[i%len(f.queries)]
				q.Params.GridD = d
				if _, err := f.eng.Search(ctx, &q, core.LORA, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig9Alpha regenerates Fig. 9(c): cost versus alpha.
func BenchmarkFig9Alpha(b *testing.B) {
	f := getFixture(b, eval.Gaode, 5000, nil)
	for _, alpha := range []float64{0.1, 0.5, 0.9} {
		for _, algo := range []core.Algorithm{core.HSP, core.LORA} {
			b.Run(fmt.Sprintf("alpha=%g/%v", alpha, algo), func(b *testing.B) {
				ctx := context.Background()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					q := *f.queries[i%len(f.queries)]
					q.Params.Alpha = alpha
					if _, err := f.eng.Search(ctx, &q, algo, core.Options{}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig9Beta regenerates Fig. 9(d): cost versus beta.
func BenchmarkFig9Beta(b *testing.B) {
	f := getFixture(b, eval.Gaode, 5000, nil)
	for _, beta := range []float64{1, 3, 9} {
		for _, algo := range []core.Algorithm{core.HSP, core.LORA} {
			b.Run(fmt.Sprintf("beta=%g/%v", beta, algo), func(b *testing.B) {
				ctx := context.Background()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					q := *f.queries[i%len(f.queries)]
					q.Params.Beta = beta
					if _, err := f.eng.Search(ctx, &q, algo, core.Options{}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig9K regenerates the technical report's k sweep.
func BenchmarkFig9K(b *testing.B) {
	f := getFixture(b, eval.Gaode, 5000, nil)
	for _, k := range []int{1, 5, 9} {
		b.Run(fmt.Sprintf("k=%d/lora", k), func(b *testing.B) {
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := *f.queries[i%len(f.queries)]
				q.Params.K = k
				if _, err := f.eng.Search(ctx, &q, core.LORA, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig9M regenerates the technical report's tuple-size sweep.
func BenchmarkFig9M(b *testing.B) {
	for _, m := range []int{2, 3, 4} {
		m := m
		mut := func(wc *workload.Config) { wc.M = m }
		// fixture key must distinguish m; wrap in a stable named func per m
		f := getFixtureM(b, m, mut)
		b.Run(fmt.Sprintf("m=%d/lora", m), func(b *testing.B) {
			runAlgo(b, f, core.LORA, core.Options{})
		})
	}
}

var fixtureMCache = map[int]*fixture{}

func getFixtureM(b *testing.B, m int, mut func(*workload.Config)) *fixture {
	fixtureMu.Lock()
	if f, ok := fixtureMCache[m]; ok {
		fixtureMu.Unlock()
		return f
	}
	fixtureMu.Unlock()
	ds, err := synth.Generate(synth.GaodeLike(5000, 1))
	if err != nil {
		b.Fatal(err)
	}
	wc := workload.Config{
		Count: 10, M: 3, Params: query.DefaultParams(), Variant: query.CSEQ,
		Mode: workload.DistanceBounded, Scale: 10, Seed: 2,
	}
	mut(&wc)
	queries, err := workload.Generate(ds, wc)
	if err != nil {
		b.Fatal(err)
	}
	f := &fixture{eng: core.NewEngine(ds), queries: queries}
	fixtureMu.Lock()
	fixtureMCache[m] = f
	fixtureMu.Unlock()
	return f
}

// BenchmarkFig10SEQ regenerates Fig. 10: the SEQ (beta=inf) frontier.
func BenchmarkFig10SEQ(b *testing.B) {
	f := getFixture(b, eval.Gaode, 5000, wcSEQ)
	for _, d := range []int{1, 4, 10} {
		b.Run(fmt.Sprintf("D=%d/lora", d), func(b *testing.B) {
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := *f.queries[i%len(f.queries)]
				q.Params.GridD = d
				if _, err := f.eng.Search(ctx, &q, core.LORA, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("dfsprune", func(b *testing.B) {
		runAlgo(b, f, core.DFSPrune, core.Options{})
	})
}

// BenchmarkFig11FP regenerates Fig. 11: CSEQ-FP with size-5 examples and
// two pinned points.
func BenchmarkFig11FP(b *testing.B) {
	f := getFixture(b, eval.Gaode, 5000, wcFP)
	for _, algo := range []core.Algorithm{core.DFSPrune, core.HSP, core.LORA} {
		b.Run(algo.String(), func(b *testing.B) {
			runAlgo(b, f, algo, core.Options{})
		})
	}
}

// BenchmarkAblationPartition isolates HSP's partitioning gain (A1).
func BenchmarkAblationPartition(b *testing.B) {
	f := getFixture(b, eval.Gaode, 5000, nil)
	b.Run("partitioned", func(b *testing.B) {
		runAlgo(b, f, core.HSP, core.Options{})
	})
	b.Run("whole-space", func(b *testing.B) {
		runAlgo(b, f, core.HSP, optHSPNoPartition())
	})
}

// BenchmarkAblationBounds isolates HSP's refined bounds (A4).
func BenchmarkAblationBounds(b *testing.B) {
	f := getFixture(b, eval.Gaode, 5000, nil)
	b.Run("refined", func(b *testing.B) {
		runAlgo(b, f, core.HSP, core.Options{})
	})
	b.Run("loose", func(b *testing.B) {
		runAlgo(b, f, core.HSP, optHSPLoose())
	})
}

// BenchmarkAblationSampling compares sampling strategies (A2).
func BenchmarkAblationSampling(b *testing.B) {
	f := getFixture(b, eval.Gaode, 20000, nil)
	b.Run("query-dependent", func(b *testing.B) {
		runAlgo(b, f, core.LORA, core.Options{})
	})
	b.Run("random", func(b *testing.B) {
		runAlgo(b, f, core.LORA, optLORARandom())
	})
}

// BenchmarkAblationCellNorm measures the optional cell-level norm filter (A3).
func BenchmarkAblationCellNorm(b *testing.B) {
	f := getFixture(b, eval.Gaode, 20000, nil)
	b.Run("off", func(b *testing.B) {
		runAlgo(b, f, core.LORA, core.Options{})
	})
	b.Run("on", func(b *testing.B) {
		runAlgo(b, f, core.LORA, optLORACellNorm())
	})
}

// BenchmarkAblationSortedBreak measures the sorted-break extension (A5).
func BenchmarkAblationSortedBreak(b *testing.B) {
	f := getFixture(b, eval.Gaode, 20000, nil)
	b.Run("hsp/paper", func(b *testing.B) {
		runAlgo(b, f, core.HSP, core.Options{})
	})
	b.Run("hsp/break", func(b *testing.B) {
		runAlgo(b, f, core.HSP, optHSPSortedBreak())
	})
	b.Run("lora/paper", func(b *testing.B) {
		runAlgo(b, f, core.LORA, core.Options{})
	})
	b.Run("lora/break", func(b *testing.B) {
		runAlgo(b, f, core.LORA, optLORASortedBreak())
	})
}

// BenchmarkParallelism measures the parallel subspace search speedup.
func BenchmarkParallelism(b *testing.B) {
	f := getFixture(b, eval.Gaode, 100000, nil)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("hsp/workers=%d", workers), func(b *testing.B) {
			runAlgo(b, f, core.HSP, optParallel(workers))
		})
	}
	b.Run("lora/workers=4", func(b *testing.B) {
		runAlgo(b, f, core.LORA, optLORAParallel(4))
	})
}

// BenchmarkEngineBuild measures index construction (excluded from query
// timings, as in the paper).
func BenchmarkEngineBuild(b *testing.B) {
	ds, err := synth.Generate(synth.GaodeLike(50000, 1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.NewEngine(ds)
	}
}
