package spatialseq_test

import (
	"context"
	"testing"
	"time"

	"spatialseq"
)

// Exercises the façade helpers beyond the core workflow: road networks,
// binary persistence, snapping, stats, defaults.
func TestFacadeRoadNetwork(t *testing.T) {
	net, err := spatialseq.RoadGrid(spatialseq.RoadGridConfig{
		Bounds: spatialseq.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10},
		NX:     5, NY: 5,
		Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := net.NewMetric(0)
	if !m.DominatesEuclidean() {
		t.Error("road metric must dominate Euclidean")
	}
	a := spatialseq.Point{X: 0, Y: 0}
	b := spatialseq.Point{X: 10, Y: 10}
	if m.Dist(a, b) < a.Dist(b) {
		t.Error("travel distance below straight line")
	}

	if _, err := spatialseq.NewRoadNetwork(nil, [][2]int32{{0, 1}}, nil); err == nil {
		t.Error("bad network should fail")
	}
}

func TestFacadeBinaryPersistence(t *testing.T) {
	ds := spatialseq.MustGenerate(spatialseq.YelpLike(200, 3))
	path := t.TempDir() + "/ds.bin"
	if err := spatialseq.WriteDatasetBinaryFile(path, ds); err != nil {
		t.Fatal(err)
	}
	got, err := spatialseq.ReadDatasetFile(path) // sniffs the format
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 200 {
		t.Errorf("Len = %d", got.Len())
	}
}

func TestFacadeStatsAndVariants(t *testing.T) {
	ds := spatialseq.MustGenerate(spatialseq.GaodeLike(500, 4))
	eng := spatialseq.NewEngine(ds)
	a, b := ds.Object(0), ds.Object(1)
	q := &spatialseq.Query{
		Variant: spatialseq.SEQ,
		Example: spatialseq.Example{
			Categories: []spatialseq.CategoryID{a.Category, b.Category},
			Locations:  []spatialseq.Point{a.Loc, b.Loc},
			Attrs:      [][]float64{a.Attr, b.Attr},
		},
		Params: spatialseq.DefaultParams(),
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := eng.Search(ctx, q, spatialseq.LORA, spatialseq.Options{CollectStats: true})
	if err != nil {
		t.Fatal(err)
	}
	var st spatialseq.SearchStats = res.Stats
	if st.Subspaces == 0 {
		t.Error("stats missing")
	}
	if q.Variant.String() != "SEQ" {
		t.Errorf("variant = %v", q.Variant)
	}
}
