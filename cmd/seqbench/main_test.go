package main

import (
	"strings"
	"testing"
)

func TestListExperiments(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-list"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"table2-yelp", "table2-gaode", "table3", "fig9-d", "fig9-alpha",
		"fig9-beta", "fig9-scale", "fig10", "fig11", "ablation-partition", "ablation-sampling",
		"ablation-cellnorm", "ablation-bounds", "ablation-break", "userstudy"} {
		if !strings.Contains(out, want) {
			t.Errorf("experiment list missing %q", want)
		}
	}
}

func TestNoArgsListsToo(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "experiments:") {
		t.Error("bare invocation should list experiments")
	}
}

func TestUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "zzz"}, &sb); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestBadSizes(t *testing.T) {
	for _, sizes := range []string{"a,b", "-5", ""} {
		var sb strings.Builder
		if err := run([]string{"-exp", "userstudy", "-sizes", sizes}, &sb); err == nil {
			t.Errorf("sizes %q should fail", sizes)
		}
	}
}

func TestUserStudyExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "userstudy"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "SIMULATED") {
		t.Error("userstudy output missing the simulation marker")
	}
}

func TestTinyTable2Run(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var sb strings.Builder
	err := run([]string{"-exp", "table2-gaode", "-sizes", "300", "-queries", "2", "-budget", "20s"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Table II") {
		t.Errorf("output malformed:\n%s", sb.String())
	}
}

func TestParseSizesSortsAndValidates(t *testing.T) {
	got, err := parseSizes("500, 100,300")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 100 || got[2] != 500 {
		t.Errorf("parseSizes = %v", got)
	}
}
