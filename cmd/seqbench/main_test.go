package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"spatialseq/internal/bench"
)

func TestListExperiments(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-list"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"table2-yelp", "table2-gaode", "table3", "fig9-d", "fig9-alpha",
		"fig9-beta", "fig9-scale", "fig10", "fig11", "ablation-partition", "ablation-sampling",
		"ablation-cellnorm", "ablation-bounds", "ablation-break", "userstudy"} {
		if !strings.Contains(out, want) {
			t.Errorf("experiment list missing %q", want)
		}
	}
}

func TestNoArgsListsToo(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "experiments:") {
		t.Error("bare invocation should list experiments")
	}
}

func TestUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "zzz"}, &sb); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestBadSizes(t *testing.T) {
	for _, sizes := range []string{"a,b", "-5", ""} {
		var sb strings.Builder
		if err := run([]string{"-exp", "userstudy", "-sizes", sizes}, &sb); err == nil {
			t.Errorf("sizes %q should fail", sizes)
		}
	}
}

func TestUserStudyExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "userstudy"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "SIMULATED") {
		t.Error("userstudy output missing the simulation marker")
	}
}

func TestTinyTable2Run(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var sb strings.Builder
	err := run([]string{"-exp", "table2-gaode", "-sizes", "300", "-queries", "2", "-budget", "20s"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Table II") {
		t.Errorf("output malformed:\n%s", sb.String())
	}
}

func TestPartialRecordsWrittenOnExperimentError(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_partial.json")
	// The heap-profile path is unwritable, so the experiment fails after
	// its measurements are already in the recorder; the records collected
	// so far must still reach the BENCH file.
	var sb strings.Builder
	err := run([]string{"-exp", "table2-gaode", "-sizes", "300", "-queries", "2",
		"-budget", "20s", "-json", out,
		"-memprofile", filepath.Join(dir, "no-such-dir", "mem")}, &sb)
	if err == nil {
		t.Fatal("unwritable profile path should fail the run")
	}
	if !strings.Contains(sb.String(), "partial bench records") {
		t.Errorf("missing partial-write notice:\n%s", sb.String())
	}
	f, rerr := bench.ReadFile(out)
	if rerr != nil {
		t.Fatalf("partial BENCH file should exist and parse: %v", rerr)
	}
	if len(f.Records) == 0 {
		t.Error("partial BENCH file should retain the records collected before the failure")
	}
}

func TestParseSizesSortsAndValidates(t *testing.T) {
	got, err := parseSizes("500, 100,300")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 100 || got[2] != 500 {
		t.Errorf("parseSizes = %v", got)
	}
}

func TestSelectExperiments(t *testing.T) {
	exps := experiments()
	sel, err := selectExperiments(exps, "table3, table2-gaode,table3")
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 || sel[0].name != "table3" || sel[1].name != "table2-gaode" {
		names := make([]string, len(sel))
		for i, e := range sel {
			names[i] = e.name
		}
		t.Errorf("selectExperiments = %v, want [table3 table2-gaode] (order kept, dup dropped)", names)
	}
	// "all" selects the whole self-contained suite; experiments needing
	// an input file (replay) and heavy ones (scale10m) stay out.
	wantAll := 0
	for _, e := range exps {
		if !e.needsInput() && !e.heavy() {
			wantAll++
		}
	}
	if wantAll == len(exps) {
		t.Fatal("expected at least one input-requiring or heavy experiment")
	}
	all, err := selectExperiments(exps, "table3,all")
	if err != nil || len(all) != wantAll {
		t.Errorf("'all' should select the self-contained suite: %d, want %d (%v)", len(all), wantAll, err)
	}
	for _, e := range all {
		if e.needsInput() {
			t.Errorf("'all' selected input-requiring experiment %s", e.name)
		}
		if e.heavy() {
			t.Errorf("'all' selected heavy experiment %s", e.name)
		}
	}
	if _, err := selectExperiments(exps, "table3,zzz"); err == nil {
		t.Error("unknown id in a list should fail")
	}
	if _, err := selectExperiments(exps, " , "); err == nil {
		t.Error("empty selection should fail")
	}
}

func TestMultiExpUnknownFails(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "userstudy,zzz"}, &sb); err == nil {
		t.Error("unknown experiment in a comma list should fail")
	}
}

func TestJSONRecordsPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_test.json")
	var sb strings.Builder
	err := run([]string{"-exp", "table2-gaode", "-sizes", "300", "-queries", "2",
		"-budget", "20s", "-seed", "1", "-json", out,
		"-cpuprofile", filepath.Join(dir, "cpu"), "-memprofile", filepath.Join(dir, "mem")}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "wrote 3 bench records") {
		t.Errorf("missing record summary line:\n%s", sb.String())
	}
	f, err := bench.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if f.Env.Seed != 1 || f.Env.Queries != 2 || f.Env.GoVersion == "" || f.Env.NumCPU == 0 {
		t.Errorf("env header incomplete: %+v", f.Env)
	}
	if len(f.Records) != 3 {
		t.Fatalf("want 3 records (dfs, hsp, lora), got %d", len(f.Records))
	}
	for _, r := range f.Records {
		if r.Experiment != "table2" || r.Family != "Gaode" || r.Size != 300 {
			t.Errorf("record misfiled: %+v", r)
		}
		if r.Completed > 0 && (r.Latency.P99MS <= 0 || r.Latency.MaxMS < r.Latency.P50MS) {
			t.Errorf("record %s: implausible latency %+v", r, r.Latency)
		}
		if len(r.Work) != 13 {
			t.Errorf("record %s: work map has %d counters, want all 13", r, len(r.Work))
		}
	}
	for _, prof := range []string{"cpu.table2-gaode", "mem.table2-gaode"} {
		st, err := os.Stat(filepath.Join(dir, prof))
		if err != nil || st.Size() == 0 {
			t.Errorf("profile %s missing or empty: %v", prof, err)
		}
	}
}
