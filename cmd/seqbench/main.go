// Command seqbench regenerates the paper's tables and figures (and this
// repository's ablation studies) from synthetic stand-in datasets.
//
// Usage:
//
//	seqbench -exp table2-gaode
//	seqbench -exp table2-gaode,table3 -json BENCH_1.json
//	seqbench -exp fig9-d -sizes 10000,50000 -queries 100 -budget 2m
//	seqbench -exp all -cpuprofile prof/cpu -memprofile prof/mem
//
// Each experiment prints a paper-style table; EXPERIMENTS.md records how
// the measured shapes compare with the published numbers. Budgets replace
// the paper's ">24hours" cut-offs.
//
// -json additionally writes a machine-readable BENCH file (schema in
// internal/bench): one record per measurement with nearest-rank latency
// percentiles, engine work counters, and allocation deltas, under an Env
// header pinning toolchain, host, git revision, and workload knobs.
// `benchdiff old.json new.json` turns two such files into a regression
// report. -cpuprofile/-memprofile capture one pprof profile per selected
// experiment at <prefix>.<exp>.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"spatialseq/internal/bench"
	"spatialseq/internal/eval"
	"spatialseq/internal/userstudy"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "seqbench:", err)
		os.Exit(1)
	}
}

type experiment struct {
	name string
	desc string
	run  func(ctx context.Context, w io.Writer, cfg eval.Config) error
}

// needsInput marks experiments that require an input file and are
// therefore excluded from "-exp all".
func (e experiment) needsInput() bool { return e.name == "replay" }

// heavy marks experiments whose resource footprint (gigabytes of
// memory, minutes of generation time) makes them opt-in: they run only
// when selected by name, never under "-exp all".
func (e experiment) heavy() bool { return e.name == "scale10m" }

func experiments() []experiment {
	return []experiment{
		{"table2-yelp", "Table II, Yelp-like scaling", func(ctx context.Context, w io.Writer, cfg eval.Config) error {
			return eval.Table2(ctx, w, eval.Yelp, cfg)
		}},
		{"table2-gaode", "Table II, Gaode-like scaling", func(ctx context.Context, w io.Writer, cfg eval.Config) error {
			return eval.Table2(ctx, w, eval.Gaode, cfg)
		}},
		{"table3", "Table III, LORA error statistics (both families)", func(ctx context.Context, w io.Writer, cfg eval.Config) error {
			if err := eval.Table3(ctx, w, eval.Yelp, cfg); err != nil {
				return err
			}
			return eval.Table3(ctx, w, eval.Gaode, cfg)
		}},
		{"fig9-d", "Fig 9(a), grid resolution sweep", func(ctx context.Context, w io.Writer, cfg eval.Config) error {
			for _, f := range []eval.Family{eval.Gaode, eval.Yelp} {
				for _, n := range firstTwo(cfg.Sizes) {
					if err := eval.Fig9GridD(ctx, w, f, n, cfg, seqInts(1, 10)); err != nil {
						return err
					}
				}
			}
			return nil
		}},
		{"fig9-alpha", "Fig 9(c), alpha sweep", sweep(eval.SweepAlpha, []float64{0.1, 0.3, 0.5, 0.7, 0.9})},
		// beta starts at 1.2: beta=1 demands an exactly-equal norm, which
		// admits no tuple on continuous coordinates
		{"fig9-beta", "Fig 9(d), beta sweep", sweep(eval.SweepBeta, []float64{1.2, 3, 5, 7, 9})},
		{"fig9-k", "tech report k sweep", sweep(eval.SweepK, []float64{1, 3, 5, 7, 9})},
		{"fig9-m", "tech report m sweep", sweep(eval.SweepM, []float64{2, 3, 4, 5})},
		{"fig9-scale", "Fig 9(f), example scale sweep", func(ctx context.Context, w io.Writer, cfg eval.Config) error {
			for _, n := range firstTwo(cfg.Sizes) {
				if err := eval.Fig9Scale(ctx, w, eval.Gaode, n, cfg, []float64{2, 4, 8, 16, 32}); err != nil {
					return err
				}
			}
			return nil
		}},
		{"fig10", "Fig 10, SEQ time/similarity frontier", func(ctx context.Context, w io.Writer, cfg eval.Config) error {
			return eval.Fig10(ctx, w, cfg, firstTwo(cfg.Sizes), seqInts(1, 10))
		}},
		{"fig11", "Fig 11, CSEQ-FP", func(ctx context.Context, w io.Writer, cfg eval.Config) error {
			return eval.Fig11(ctx, w, cfg, firstTwo(cfg.Sizes))
		}},
		{"phases", "per-phase wall-time breakdown (obs.Trace)", single(eval.PhaseBreakdown)},
		{"skew", "subspace-imbalance baseline from span tracing (parallel workers)", func(ctx context.Context, w io.Writer, cfg eval.Config) error {
			return eval.SkewBaseline(ctx, w, cfg)
		}},
		{"shard", "scatter-gather coordinator scaling across shard counts", func(ctx context.Context, w io.Writer, cfg eval.Config) error {
			return eval.ShardScaling(ctx, w, cfg)
		}},
		{"scale10m", "10M-POI Gaode-like load-and-answer smoke (heavy; not in 'all')", func(ctx context.Context, w io.Writer, cfg eval.Config) error {
			return eval.Scale10M(ctx, w, cfg)
		}},
		{"ablation-partition", "A1: HSP partitioning on/off", single(eval.AblationPartition)},
		{"ablation-bounds", "A4: HSP refined vs loose bounds", single(eval.AblationBounds)},
		{"ablation-sampling", "A2: query-dependent vs random sampling", func(ctx context.Context, w io.Writer, cfg eval.Config) error {
			return eval.AblationSampling(ctx, w, eval.Gaode, firstOf(cfg.Sizes), cfg, []int{1, 5, 10, 50})
		}},
		{"ablation-cellnorm", "A3: LORA cell norm filter", single(eval.AblationCellNorm)},
		{"ablation-break", "A5: sorted-break extension", single(eval.AblationSortedBreak)},
		{"userstudy", "Section IV-C simulated survey", func(ctx context.Context, w io.Writer, cfg eval.Config) error {
			return userstudy.Simulate(cfg.Seed).Report(w)
		}},
		{"replay", "re-run a flight-recorder capture (-capture); work counters must match", func(ctx context.Context, w io.Writer, cfg eval.Config) error {
			return eval.Replay(ctx, w, cfg)
		}},
	}
}

func sweep(kind eval.ParamKind, values []float64) func(context.Context, io.Writer, eval.Config) error {
	return func(ctx context.Context, w io.Writer, cfg eval.Config) error {
		for _, f := range []eval.Family{eval.Gaode, eval.Yelp} {
			for _, n := range firstTwo(cfg.Sizes) {
				if err := eval.Fig9Param(ctx, w, f, n, cfg, kind, values); err != nil {
					return err
				}
			}
		}
		return nil
	}
}

func single(fn func(context.Context, io.Writer, eval.Family, int, eval.Config) error) func(context.Context, io.Writer, eval.Config) error {
	return func(ctx context.Context, w io.Writer, cfg eval.Config) error {
		return fn(ctx, w, eval.Gaode, firstOf(cfg.Sizes), cfg)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("seqbench", flag.ContinueOnError)
	expName := fs.String("exp", "", "comma-separated experiment ids (or 'all'); see -list")
	list := fs.Bool("list", false, "list experiment ids")
	sizesFlag := fs.String("sizes", "1000,5000,10000", "comma-separated dataset sizes")
	queries := fs.Int("queries", 20, "queries per measurement (paper: 100)")
	budget := fs.Duration("budget", 30*time.Second, "time budget per (algorithm, dataset) cell")
	seed := fs.Int64("seed", 1, "master seed")
	m := fs.Int("m", 3, "example tuple size")
	jsonPath := fs.String("json", "", "write machine-readable BENCH records to this file")
	capture := fs.String("capture", "", "flight-recorder capture file for -exp replay")
	cpuProfile := fs.String("cpuprofile", "", "write per-experiment CPU profiles to <prefix>.<exp>")
	memProfile := fs.String("memprofile", "", "write per-experiment heap profiles to <prefix>.<exp>")
	if err := fs.Parse(args); err != nil {
		return err
	}
	exps := experiments()
	if *list || *expName == "" {
		fmt.Fprintln(w, "experiments:")
		for _, e := range exps {
			fmt.Fprintf(w, "  %-20s %s\n", e.name, e.desc)
		}
		fmt.Fprintln(w, "  all                  run everything")
		return nil
	}
	sizes, err := parseSizes(*sizesFlag)
	if err != nil {
		return err
	}
	cfg := eval.DefaultConfig()
	cfg.Sizes = sizes
	cfg.QueryCount = *queries
	cfg.Budget = *budget
	cfg.Seed = *seed
	cfg.M = *m
	cfg.Capture = *capture

	var rec *bench.Recorder
	if *jsonPath != "" {
		env := bench.CaptureEnv()
		env.Seed = *seed
		env.Queries = *queries
		env.BudgetMS = float64(*budget) / float64(time.Millisecond)
		env.Sizes = sizes
		env.M = *m
		rec = bench.NewRecorder(env)
		cfg.Rec = rec
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	selected, err := selectExperiments(exps, *expName)
	if err != nil {
		return err
	}
	for _, e := range selected {
		fmt.Fprintf(w, "== %s: %s ==\n", e.name, e.desc)
		start := time.Now()
		if err := profiled(*cpuProfile, *memProfile, e.name, func() error {
			return e.run(ctx, w, cfg)
		}); err != nil {
			// Flush what we measured so far: a failed (or interrupted)
			// experiment late in a long multi-experiment session must not
			// discard every record collected before it.
			if rec != nil && rec.Len() > 0 {
				if werr := bench.WriteFile(*jsonPath, rec.File()); werr != nil {
					fmt.Fprintf(os.Stderr, "seqbench: writing partial bench records: %v\n", werr)
				} else {
					fmt.Fprintf(w, "wrote %d partial bench records to %s\n", rec.Len(), *jsonPath)
				}
			}
			return fmt.Errorf("%s: %w", e.name, err)
		}
		fmt.Fprintf(w, "(%s finished in %s)\n\n", e.name, time.Since(start).Round(time.Millisecond))
	}
	if rec != nil {
		if err := bench.WriteFile(*jsonPath, rec.File()); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %d bench records to %s\n", rec.Len(), *jsonPath)
	}
	return nil
}

// selectExperiments resolves a comma-separated id list ("all" selects
// everything), preserving the requested order and dropping duplicates.
func selectExperiments(exps []experiment, names string) ([]experiment, error) {
	var selected []experiment
	seen := make(map[string]bool)
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" || seen[name] {
			continue
		}
		if name == "all" {
			// "all" means the self-contained affordable suite; experiments
			// that need an input file (replay) or a heavyweight corpus
			// (scale10m) must be selected explicitly.
			var out []experiment
			for _, e := range exps {
				if !e.needsInput() && !e.heavy() {
					out = append(out, e)
				}
			}
			return out, nil
		}
		found := false
		for _, e := range exps {
			if e.name == name {
				selected = append(selected, e)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown experiment %q; use -list", name)
		}
		seen[name] = true
	}
	if len(selected) == 0 {
		return nil, fmt.Errorf("no experiments selected; use -list")
	}
	return selected, nil
}

// profiled runs fn with optional per-experiment pprof capture: a CPU
// profile covering the whole experiment and a heap profile (after a
// forced GC) at its end, each written to <prefix>.<exp>.
func profiled(cpuPrefix, memPrefix, exp string, fn func() error) error {
	if cpuPrefix != "" {
		f, err := os.Create(cpuPrefix + "." + exp)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			_ = f.Close() // the create succeeded; the profile error wins
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			_ = f.Close()
		}()
	}
	if err := fn(); err != nil {
		return err
	}
	if memPrefix != "" {
		f, err := os.Create(memPrefix + "." + exp)
		if err != nil {
			return err
		}
		runtime.GC() // settle the heap so the profile shows live objects
		werr := pprof.WriteHeapProfile(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
	}
	return nil
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad size %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no sizes given")
	}
	sort.Ints(out)
	return out, nil
}

func firstOf(sizes []int) int { return sizes[0] }

func firstTwo(sizes []int) []int {
	if len(sizes) > 2 {
		return sizes[:2]
	}
	return sizes
}

func seqInts(lo, hi int) []int {
	out := make([]int, 0, hi-lo+1)
	for i := lo; i <= hi; i++ {
		out = append(out, i)
	}
	return out
}
