// Command seqcli answers example-based queries against a dataset file
// (CSV or the library's binary format, sniffed automatically).
//
// The example is given as a semicolon-separated list of "x,y,category"
// triples; attributes for each example dimension are taken from the most
// attribute-typical object of that category (or can be supplied inline as
// "x,y,category,a0,a1,..."). For instance:
//
//	seqcli -data gaode.csv -k 5 -beta 1.5 -algo lora \
//	       -example "10,20,gaode-cat-0003;12,21,gaode-cat-0007;11,19,gaode-cat-0001"
//
// Add -map for an ASCII rendering, -stats for work counters, -geojson to
// export the answer for a map UI, or -workload to run a saved query set
// in batch.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"spatialseq/internal/core"
	"spatialseq/internal/dataset"
	"spatialseq/internal/export"
	"spatialseq/internal/geo"
	"spatialseq/internal/query"
	"spatialseq/internal/textmap"
	"spatialseq/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "seqcli:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("seqcli", flag.ContinueOnError)
	dataPath := fs.String("data", "", "dataset path, CSV or binary (required)")
	exampleSpec := fs.String("example", "", "example tuple: x,y,category[,attr...];... (required unless -workload)")
	workloadPath := fs.String("workload", "", "run a saved query set (JSON Lines) instead of -example")
	k := fs.Int("k", 5, "number of results")
	alpha := fs.Float64("alpha", 0.5, "similarity weight alpha")
	beta := fs.Float64("beta", 1.5, "norm constraint beta (0 = SEQ, unconstrained)")
	gridD := fs.Int("d", 5, "LORA grid resolution D")
	xi := fs.Int("xi", 10, "LORA sampling budget xi (<=0 disables sampling)")
	algoName := fs.String("algo", "auto", "algorithm: auto, brute, dfs-prune, hsp, lora")
	timeout := fs.Duration("timeout", time.Minute, "query timeout")
	showMap := fs.Bool("map", false, "render the example and results on an ASCII map")
	showStats := fs.Bool("stats", false, "print per-search work counters")
	geojsonPath := fs.String("geojson", "", "also write the example and results as GeoJSON to this path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataPath == "" || (*exampleSpec == "" && *workloadPath == "") {
		return fmt.Errorf("-data and one of -example / -workload are required")
	}
	if *exampleSpec != "" && *workloadPath != "" {
		return fmt.Errorf("-example and -workload are mutually exclusive")
	}
	ds, err := dataset.ReadAnyFile(*dataPath)
	if err != nil {
		return err
	}
	algo, err := core.ParseAlgorithm(*algoName)
	if err != nil {
		return err
	}
	if *workloadPath != "" {
		return runWorkload(out, ds, *workloadPath, algo, *timeout)
	}
	ex, err := parseExample(ds, *exampleSpec)
	if err != nil {
		return err
	}
	q := &query.Query{
		Variant: query.CSEQ,
		Example: *ex,
		Params:  query.Params{K: *k, Alpha: *alpha, Beta: *beta, GridD: *gridD, Xi: *xi},
	}
	if *beta == 0 {
		q.Variant = query.SEQ
		q.Params.Beta = 1
	}
	eng := core.NewEngine(ds)
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	res, err := eng.Search(ctx, q, algo, core.Options{CollectStats: *showStats})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%s answered %s in %s; %d results\n",
		res.Algorithm, q.Variant, res.Elapsed.Round(time.Microsecond), len(res.Tuples))
	for rank, t := range res.Tuples {
		fmt.Fprintf(out, "#%d  sim=%.6f\n", rank+1, t.Sim)
		for d, pos := range t.Positions {
			o := ds.Object(int(pos))
			fmt.Fprintf(out, "    [%d] %s  %s  cat=%s\n", d, o.Name, o.Loc, ds.CategoryName(o.Category))
		}
	}
	if *showStats {
		st := res.Stats
		fmt.Fprintf(out, "work: %d subspaces (%d skipped), %d candidates, %d prefixes pruned, %d tuples scored, %d offered\n",
			st.Subspaces, st.SubspacesSkipped, st.Candidates, st.PrunedPrefixes, st.Tuples, st.Offered)
		if st.CellTuples > 0 {
			fmt.Fprintf(out, "      %d cell tuples (%d cell prefixes pruned), %d rank-graph pops, %d points sampled out\n",
				st.CellTuples, st.PrunedCellPrefixes, st.RankPops, st.SampledOut)
		}
	}
	if *showMap {
		if err := renderMap(out, ds, q, res); err != nil {
			return err
		}
	}
	if *geojsonPath != "" {
		f, err := os.Create(*geojsonPath)
		if err != nil {
			return err
		}
		if err := export.Results(f, ds, q, res); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote GeoJSON to %s\n", *geojsonPath)
	}
	return nil
}

// runWorkload answers every query of a saved query set and prints the
// per-query and aggregate costs.
func runWorkload(out io.Writer, ds *dataset.Dataset, path string, algo core.Algorithm, timeout time.Duration) error {
	queries, err := workload.LoadFile(path, ds)
	if err != nil {
		return err
	}
	eng := core.NewEngine(ds)
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	var total time.Duration
	var simSum float64
	var simN int
	for i, q := range queries {
		res, err := eng.Search(ctx, q, algo, core.Options{})
		if err != nil {
			return fmt.Errorf("query %d: %w", i, err)
		}
		total += res.Elapsed
		var s float64
		for _, t := range res.Tuples {
			s += t.Sim
			simN++
		}
		simSum += s
		fmt.Fprintf(out, "query %3d: %s, %d results, %s\n",
			i, q.Variant, len(res.Tuples), res.Elapsed.Round(time.Microsecond))
	}
	if n := len(queries); n > 0 {
		fmt.Fprintf(out, "ran %d queries with %s: mean %s/query", n, algo, (total / time.Duration(n)).Round(time.Microsecond))
		if simN > 0 {
			fmt.Fprintf(out, ", avg similarity %.4f", simSum/float64(simN))
		}
		fmt.Fprintln(out)
	}
	return nil
}

// renderMap draws the example (*) and each result tuple (1, 2, ...) on an
// ASCII viewport fitted around them.
func renderMap(out io.Writer, ds *dataset.Dataset, q *query.Query, res *core.Result) error {
	layers := []textmap.Layer{
		{Label: "example", Rune: '*', Points: q.Example.Locations},
	}
	for rank, t := range res.Tuples {
		if rank >= 9 {
			break // single-rune markers
		}
		pts := make([]geo.Point, len(t.Positions))
		for d, pos := range t.Positions {
			pts[d] = ds.Object(int(pos)).Loc
		}
		layers = append(layers, textmap.Layer{
			Label:  fmt.Sprintf("result #%d (sim %.4f)", rank+1, t.Sim),
			Rune:   rune('1' + rank),
			Points: pts,
		})
	}
	view := textmap.FitView(layers)
	canvas, err := textmap.New(view, 72, 24)
	if err != nil {
		return err
	}
	fmt.Fprintln(out)
	fmt.Fprint(out, canvas.Render(layers))
	return nil
}

// parseExample builds a query example from the CLI spec. Dimensions without
// inline attributes inherit the attribute vector of the category's most
// central object (closest to the category's attribute centroid).
func parseExample(ds *dataset.Dataset, spec string) (*query.Example, error) {
	parts := strings.Split(spec, ";")
	if len(parts) < 2 {
		return nil, fmt.Errorf("example needs at least 2 objects, got %d", len(parts))
	}
	ex := &query.Example{}
	for i, part := range parts {
		fields := strings.Split(strings.TrimSpace(part), ",")
		if len(fields) < 3 {
			return nil, fmt.Errorf("example object %d: want x,y,category[,attrs...], got %q", i, part)
		}
		x, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("example object %d: bad x %q", i, fields[0])
		}
		y, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("example object %d: bad y %q", i, fields[1])
		}
		cat, ok := ds.CategoryByName(fields[2])
		if !ok {
			return nil, fmt.Errorf("example object %d: unknown category %q", i, fields[2])
		}
		var attr []float64
		if len(fields) > 3 {
			for _, f := range fields[3:] {
				v, err := strconv.ParseFloat(f, 64)
				if err != nil {
					return nil, fmt.Errorf("example object %d: bad attribute %q", i, f)
				}
				attr = append(attr, v)
			}
			if len(attr) != ds.AttrDim() {
				return nil, fmt.Errorf("example object %d: %d attributes, dataset wants %d", i, len(attr), ds.AttrDim())
			}
		} else {
			attr = categoryCentroid(ds, cat)
			if attr == nil {
				return nil, fmt.Errorf("example object %d: category %q has no objects to infer attributes from", i, fields[2])
			}
		}
		ex.Categories = append(ex.Categories, cat)
		ex.Locations = append(ex.Locations, geo.Point{X: x, Y: y})
		ex.Attrs = append(ex.Attrs, attr)
	}
	return ex, nil
}

func categoryCentroid(ds *dataset.Dataset, cat dataset.CategoryID) []float64 {
	objs := ds.CategoryObjects(cat)
	if len(objs) == 0 {
		return nil
	}
	centroid := make([]float64, ds.AttrDim())
	for _, pos := range objs {
		for j, a := range ds.Object(int(pos)).Attr {
			centroid[j] += a
		}
	}
	for j := range centroid {
		centroid[j] /= float64(len(objs))
	}
	return centroid
}
