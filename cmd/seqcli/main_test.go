package main

import (
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"spatialseq/internal/dataset"
	"spatialseq/internal/export"
	"spatialseq/internal/geo"
	"spatialseq/internal/query"
	"spatialseq/internal/synth"
	"spatialseq/internal/workload"
)

func writeTestData(t *testing.T) string {
	t.Helper()
	ds, err := synth.Generate(synth.GaodeLike(500, 1))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ds.csv")
	if err := dataset.WriteFile(path, ds); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseExample(t *testing.T) {
	path := writeTestData(t)
	ds, err := dataset.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	catA := ds.CategoryName(ds.Object(0).Category)
	catB := ds.CategoryName(ds.Object(1).Category)

	ex, err := parseExample(ds, "10,20,"+catA+";30,40,"+catB)
	if err != nil {
		t.Fatal(err)
	}
	if ex.M() != 2 {
		t.Fatalf("M = %d", ex.M())
	}
	if ex.Locations[0] != (geo.Point{X: 10, Y: 20}) {
		t.Errorf("location[0] = %v", ex.Locations[0])
	}
	if len(ex.Attrs[0]) != ds.AttrDim() {
		t.Errorf("inferred attrs have %d dims", len(ex.Attrs[0]))
	}

	// inline attributes
	inline := "1,2," + catA + ",0.1,0.2,0.3,0.4,0.5,0.6;3,4," + catB
	ex2, err := parseExample(ds, inline)
	if err != nil {
		t.Fatal(err)
	}
	if ex2.Attrs[0][0] != 0.1 || ex2.Attrs[0][5] != 0.6 {
		t.Errorf("inline attrs = %v", ex2.Attrs[0])
	}
}

func TestParseExampleErrors(t *testing.T) {
	path := writeTestData(t)
	ds, err := dataset.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	catA := ds.CategoryName(ds.Object(0).Category)
	cases := []string{
		"1,2," + catA,                      // only one object
		"1,2",                              // missing category
		"x,2," + catA + ";3,4," + catA,     // bad x
		"1,2,unknown-cat;3,4," + catA,      // unknown category
		"1,2," + catA + ",0.5;3,4," + catA, // wrong attr count
	}
	for i, spec := range cases {
		if _, err := parseExample(ds, spec); err == nil {
			t.Errorf("case %d (%q) should fail", i, spec)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	path := writeTestData(t)
	ds, err := dataset.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	o1, o2 := ds.Object(0), ds.Object(1)
	spec := fmtPoint(o1.Loc, ds.CategoryName(o1.Category)) + ";" + fmtPoint(o2.Loc, ds.CategoryName(o2.Category))
	if err := run([]string{"-data", path, "-example", spec, "-k", "3", "-algo", "hsp"}, io.Discard); err != nil {
		t.Fatal(err)
	}
	// SEQ mode via beta=0
	if err := run([]string{"-data", path, "-example", spec, "-beta", "0", "-algo", "lora"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithGeoJSON(t *testing.T) {
	path := writeTestData(t)
	ds, err := dataset.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	o1, o2 := ds.Object(0), ds.Object(1)
	spec := fmtPoint(o1.Loc, ds.CategoryName(o1.Category)) + ";" + fmtPoint(o2.Loc, ds.CategoryName(o2.Category))
	gj := filepath.Join(t.TempDir(), "out.geojson")
	if err := run([]string{"-data", path, "-example", spec, "-geojson", gj, "-algo", "hsp"}, io.Discard); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(gj)
	if err != nil {
		t.Fatal(err)
	}
	n, err := export.Validate(data)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Error("GeoJSON export is empty")
	}
}

func TestRunWorkloadBatch(t *testing.T) {
	path := writeTestData(t)
	ds, err := dataset.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := workload.Generate(ds, workload.Config{
		Count: 3, M: 2, Mode: workload.Random,
		Params: query.Params{K: 2, Alpha: 0.5, Beta: 3, GridD: 4, Xi: 10},
		Seed:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	wlPath := filepath.Join(t.TempDir(), "wl.jsonl")
	if err := workload.SaveFile(wlPath, ds, qs); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-data", path, "-workload", wlPath, "-algo", "hsp"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "ran 3 queries") {
		t.Errorf("summary missing:\n%s", out)
	}
	// mutually exclusive flags
	if err := run([]string{"-data", path, "-workload", wlPath, "-example", "1,2,x;3,4,y"}, io.Discard); err == nil {
		t.Error("-example with -workload should fail")
	}
}

func TestRunWithStats(t *testing.T) {
	path := writeTestData(t)
	ds, err := dataset.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	o1, o2 := ds.Object(0), ds.Object(1)
	spec := fmtPoint(o1.Loc, ds.CategoryName(o1.Category)) + ";" + fmtPoint(o2.Loc, ds.CategoryName(o2.Category))
	var sb strings.Builder
	if err := run([]string{"-data", path, "-example", spec, "-stats", "-algo", "lora"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "work:") {
		t.Errorf("stats line missing:\n%s", sb.String())
	}
}

func TestRunWithMap(t *testing.T) {
	path := writeTestData(t)
	ds, err := dataset.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	o1, o2 := ds.Object(0), ds.Object(1)
	spec := fmtPoint(o1.Loc, ds.CategoryName(o1.Category)) + ";" + fmtPoint(o2.Loc, ds.CategoryName(o2.Category))
	var sb strings.Builder
	if err := run([]string{"-data", path, "-example", spec, "-map", "-algo", "hsp"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "example") || !strings.Contains(out, "result #1") {
		t.Errorf("map legend missing:\n%s", out)
	}
	if !strings.Contains(out, "+---") {
		t.Errorf("map frame missing:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	path := writeTestData(t)
	cases := [][]string{
		{},              // missing everything
		{"-data", path}, // missing example
		{"-data", path + ".missing", "-example", "1,2,a;3,4,b"},
		{"-data", path, "-example", "1,2,a;3,4,b", "-algo", "zzz"},
	}
	for i, args := range cases {
		if err := run(args, io.Discard); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func fmtPoint(p geo.Point, cat string) string {
	return strconv.FormatFloat(p.X, 'g', -1, 64) + "," +
		strconv.FormatFloat(p.Y, 'g', -1, 64) + "," + cat
}
