// Command seqlint runs this repository's static-analysis suite over the
// given package patterns (default ./...) and exits non-zero on any
// finding. It is dependency-free: the analyzers live in internal/lint
// and use only go/ast, go/parser, go/token, and go/types; package
// metadata comes from `go list` (no network).
//
// Usage:
//
//	seqlint [-layers policy-file] [-json] [-gate baseline] \
//	        [-write-baseline file] [-audit] [packages...]
//
// Analyzers: floatcmp, syncmisuse, layering, panicfree, errdrop,
// hotpathalloc, maporder, goroutinediscipline, statsname.
//
// Modes:
//
//	(default)        print findings as text, exit 1 if any
//	-json            print the findings document as JSON, exit 1 if any
//	-gate FILE       compare findings against the committed baseline:
//	                 baselined (justified, pre-existing) findings pass,
//	                 any NEW finding fails; baseline entries that no
//	                 longer fire are reported as stale but never block
//	-write-baseline FILE  write current findings as the new baseline
//	-audit           list every //lint:ignore directive with its
//	                 analyzer, reason, and location; exit 1 if any
//	                 directive lacks a reason
//
// Suppress a finding with a justified comment on, or directly above,
// the offending line:
//
//	//lint:ignore <analyzer> <reason>
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"spatialseq/internal/lint"
)

func main() {
	layersFlag := flag.String("layers", "", "layer policy file (default <module root>/seqlint.layers)")
	jsonFlag := flag.Bool("json", false, "emit findings as a JSON document on stdout")
	gateFlag := flag.String("gate", "", "baseline findings file; fail only on findings not in it")
	writeBaselineFlag := flag.String("write-baseline", "", "write current findings to this file and exit")
	auditFlag := flag.Bool("audit", false, "list every lint:ignore directive; fail on missing reasons")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: seqlint [-layers policy-file] [-json] [-gate baseline] [-write-baseline file] [-audit] [packages...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	code, err := run(options{
		layersFile:    *layersFlag,
		json:          *jsonFlag,
		gateFile:      *gateFlag,
		writeBaseline: *writeBaselineFlag,
		audit:         *auditFlag,
		patterns:      flag.Args(),
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "seqlint: %v\n", err)
		os.Exit(2)
	}
	os.Exit(code)
}

type options struct {
	layersFile    string
	json          bool
	gateFile      string
	writeBaseline string
	audit         bool
	patterns      []string
}

func run(opts options) (int, error) {
	cwd, err := os.Getwd()
	if err != nil {
		return 0, err
	}
	modPath, modRoot, err := lint.Module(cwd)
	if err != nil {
		return 0, err
	}
	if opts.layersFile == "" {
		opts.layersFile = filepath.Join(modRoot, "seqlint.layers")
	}
	rules, err := lint.LoadLayerPolicy(opts.layersFile)
	if err != nil {
		return 0, fmt.Errorf("loading layer policy: %v", err)
	}
	pkgs, err := lint.Load(cwd, opts.patterns...)
	if err != nil {
		return 0, err
	}

	if opts.audit {
		return runAudit(modRoot, pkgs)
	}

	diags := lint.Run(pkgs, lint.Default(modPath, rules))
	report := lint.NewReport(modPath, modRoot, diags)

	if opts.writeBaseline != "" {
		f, err := os.Create(opts.writeBaseline)
		if err != nil {
			return 0, err
		}
		if err := report.WriteJSON(f); err != nil {
			f.Close()
			return 0, err
		}
		if err := f.Close(); err != nil {
			return 0, err
		}
		fmt.Fprintf(os.Stderr, "seqlint: wrote %d finding(s) to %s\n", len(report.Findings), opts.writeBaseline)
		return 0, nil
	}

	if opts.gateFile != "" {
		return runGate(report, opts.gateFile)
	}

	if opts.json {
		if err := report.WriteJSON(os.Stdout); err != nil {
			return 0, err
		}
		if len(report.Findings) > 0 {
			return 1, nil
		}
		return 0, nil
	}

	for _, f := range report.Findings {
		fmt.Println(f)
	}
	if len(report.Findings) > 0 {
		fmt.Fprintf(os.Stderr, "seqlint: %d finding(s)\n", len(report.Findings))
		return 1, nil
	}
	return 0, nil
}

// runGate compares current findings with the committed baseline. Only
// findings absent from the baseline fail the gate; stale baseline
// entries (fixed findings) are advisory, so cleaning up lint debt never
// breaks CI.
func runGate(report lint.Report, baselinePath string) (int, error) {
	baseline, err := lint.LoadReport(baselinePath)
	if err != nil {
		return 0, fmt.Errorf("loading baseline: %v", err)
	}
	res := lint.Gate(report, baseline)
	for _, f := range res.Stale {
		fmt.Fprintf(os.Stderr, "seqlint: stale baseline entry (fixed? remove it): %s\n", f)
	}
	if len(res.New) > 0 {
		for _, f := range res.New {
			fmt.Println(f)
		}
		fmt.Fprintf(os.Stderr, "seqlint: %d new finding(s) not in baseline %s\n", len(res.New), baselinePath)
		fmt.Fprintf(os.Stderr, "seqlint: fix them, add //lint:ignore with a reason, or regenerate the baseline deliberately\n")
		return 1, nil
	}
	fmt.Fprintf(os.Stderr, "seqlint: gate clean (%d finding(s), all baselined)\n", len(report.Findings))
	return 0, nil
}

// runAudit lists every //lint:ignore directive in the tree so reviewers
// can see the full set of accepted exceptions in one place. A directive
// with no reason fails the audit.
func runAudit(modRoot string, pkgs []*lint.Package) (int, error) {
	directives, malformed := lint.Directives(pkgs)
	lines, unjustified := lint.Audit(modRoot, directives)
	for _, line := range lines {
		fmt.Println(line)
	}
	bad := len(malformed) + len(unjustified)
	if bad > 0 {
		for _, d := range malformed {
			fmt.Fprintf(os.Stderr, "seqlint: %s\n", d)
		}
		for _, d := range unjustified {
			fmt.Fprintf(os.Stderr, "seqlint: %s:%d: [%s] suppression has no reason\n", d.File, d.Line, d.Analyzer)
		}
		fmt.Fprintf(os.Stderr, "seqlint: %d unjustified suppression(s)\n", bad)
		return 1, nil
	}
	fmt.Fprintf(os.Stderr, "seqlint: %d suppression(s), all justified\n", len(directives))
	return 0, nil
}
