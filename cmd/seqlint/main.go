// Command seqlint runs this repository's static-analysis suite over the
// given package patterns (default ./...) and exits non-zero on any
// finding. It is dependency-free: the analyzers live in internal/lint
// and use only go/ast, go/parser, go/token, and go/types; package
// metadata comes from `go list` (no network).
//
// Usage:
//
//	seqlint [-layers policy-file] [packages...]
//
// Analyzers: floatcmp, syncmisuse, layering, panicfree, errdrop.
// Suppress a finding with a justified comment on, or directly above,
// the offending line:
//
//	//lint:ignore <analyzer> <reason>
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"spatialseq/internal/lint"
)

func main() {
	layersFlag := flag.String("layers", "", "layer policy file (default <module root>/seqlint.layers)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: seqlint [-layers policy-file] [packages...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if err := run(*layersFlag, flag.Args()); err != nil {
		fmt.Fprintf(os.Stderr, "seqlint: %v\n", err)
		os.Exit(2)
	}
}

func run(layersFile string, patterns []string) error {
	cwd, err := os.Getwd()
	if err != nil {
		return err
	}
	modPath, modRoot, err := lint.Module(cwd)
	if err != nil {
		return err
	}
	if layersFile == "" {
		layersFile = filepath.Join(modRoot, "seqlint.layers")
	}
	rules, err := lint.LoadLayerPolicy(layersFile)
	if err != nil {
		return fmt.Errorf("loading layer policy: %v", err)
	}
	pkgs, err := lint.Load(cwd, patterns...)
	if err != nil {
		return err
	}
	diags := lint.Run(pkgs, lint.Default(modPath, rules))
	for _, d := range diags {
		if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !filepath.IsAbs(rel) {
			d.Pos.Filename = rel
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "seqlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
	return nil
}
