package main

import (
	"path/filepath"
	"testing"

	"spatialseq/internal/dataset"
)

func TestRunWritesDataset(t *testing.T) {
	out := filepath.Join(t.TempDir(), "ds.csv")
	if err := run([]string{"-family", "gaode", "-n", "500", "-seed", "3", "-out", out}); err != nil {
		t.Fatal(err)
	}
	ds, err := dataset.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 500 {
		t.Errorf("Len = %d", ds.Len())
	}
	if ds.NumCategories() != 20 {
		t.Errorf("NumCategories = %d", ds.NumCategories())
	}
}

func TestRunYelpFamily(t *testing.T) {
	out := filepath.Join(t.TempDir(), "y.csv")
	if err := run([]string{"-family", "yelp", "-n", "300", "-out", out}); err != nil {
		t.Fatal(err)
	}
	ds, err := dataset.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	// CSV only interns categories that actually appear among the 300
	// objects; the full table has 1395.
	if ds.NumCategories() == 0 || ds.NumCategories() > 1395 {
		t.Errorf("NumCategories = %d", ds.NumCategories())
	}
	if ds.AttrDim() != 12 {
		t.Errorf("AttrDim = %d", ds.AttrDim())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-family", "gaode", "-n", "10"},                       // no -out
		{"-family", "zzz", "-n", "10", "-out", "/tmp/x.csv"},   // bad family
		{"-family", "gaode", "-n", "-5", "-out", "/tmp/x.csv"}, // bad n
	}
	for i, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("case %d should fail: %v", i, args)
		}
	}
}
