// Command datagen writes a synthetic POI dataset to CSV.
//
// Usage:
//
//	datagen -family yelp  -n 77444   -seed 1 -out yelp.csv
//	datagen -family gaode -n 1000000 -seed 1 -out gaode.csv
//
// The two families are calibrated stand-ins for the paper's Yelp and Gaode
// corpora (see DESIGN.md §5).
package main

import (
	"flag"
	"fmt"
	"os"

	"spatialseq/internal/dataset"
	"spatialseq/internal/synth"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	family := fs.String("family", "gaode", "dataset family: yelp or gaode")
	n := fs.Int("n", 10000, "number of POIs (0 = family default size)")
	seed := fs.Int64("seed", 1, "generation seed")
	out := fs.String("out", "", "output path (required)")
	format := fs.String("format", "csv", "output format: csv or bin (binary loads ~10x faster)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("-out is required")
	}
	if *n < 0 {
		return fmt.Errorf("-n must be non-negative (0 selects the family default size)")
	}
	var cfg synth.Config
	switch *family {
	case "yelp":
		cfg = synth.YelpLike(*n, *seed)
	case "gaode":
		cfg = synth.GaodeLike(*n, *seed)
	default:
		return fmt.Errorf("unknown family %q (want yelp or gaode)", *family)
	}
	ds, err := synth.Generate(cfg)
	if err != nil {
		return err
	}
	switch *format {
	case "csv":
		err = dataset.WriteFile(*out, ds)
	case "bin":
		err = dataset.WriteBinaryFile(*out, ds)
	default:
		return fmt.Errorf("unknown format %q (want csv or bin)", *format)
	}
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d POIs (%d categories, %d attrs) to %s (%s)\n",
		ds.Len(), ds.NumCategories(), ds.AttrDim(), *out, *format)
	return nil
}
