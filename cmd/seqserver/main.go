// Command seqserver serves example-based spatial search over HTTP — the
// "map service" surface of the paper's Figure 2.
//
// Usage:
//
//	seqserver -data gaode.csv -addr :8080
//	seqserver -synth gaode -n 100000 -addr :8080   # no file needed
//	seqserver -synth gaode -addr 127.0.0.1:0 -pprof -log-level debug
//
// Endpoints: GET /healthz, /stats, /categories, /metrics, POST /search,
// /snap, GET /debug/queries (+ /debug/queries/capture), GET
// /debug/trace/{requestID} (Chrome trace export of a retained slow
// query's span tree, ?format=html for an inline timeline), and (with
// -pprof) GET /debug/pprof/* (see internal/server).
//
// The query flight recorder is always on: every completed query leaves a
// record in a bounded ring, the slowest per window are tail-sampled, and
// queries over the adaptive p99 threshold (or the -flight-threshold
// floor) emit a structured slow-query log line. /debug/queries/capture
// exports retained slow queries for `seqbench -exp replay`. Tune with
// -flight-buffer, -flight-window, -flight-keep and -flight-threshold.
//
// Logs are structured JSON on stderr, one object per line; the
// "listening" record carries the bound address (useful with ":0").
package main

import (
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"time"

	"spatialseq/internal/core"
	"spatialseq/internal/dataset"
	"spatialseq/internal/obs"
	"spatialseq/internal/obs/flight"
	"spatialseq/internal/server"
	"spatialseq/internal/synth"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "seqserver:", err)
		os.Exit(1)
	}
}

// config is the parsed command line.
type config struct {
	dataPath    string
	synthFamily string
	n           int
	seed        int64
	addr        string
	timeout     time.Duration
	cacheSize   int
	logLevel    string
	pprof       bool
	shards      int

	flightBuffer    int
	flightWindow    time.Duration
	flightKeep      int
	flightThreshold time.Duration
}

func parseFlags(args []string) (*config, error) {
	fs := flag.NewFlagSet("seqserver", flag.ContinueOnError)
	cfg := &config{}
	fs.StringVar(&cfg.dataPath, "data", "", "dataset path (CSV or binary)")
	fs.StringVar(&cfg.synthFamily, "synth", "", "generate a synthetic dataset instead: yelp or gaode")
	fs.IntVar(&cfg.n, "n", 50000, "synthetic dataset size")
	fs.Int64Var(&cfg.seed, "seed", 1, "synthetic dataset seed")
	fs.StringVar(&cfg.addr, "addr", ":8080", "listen address (use :0 for an ephemeral port)")
	fs.DurationVar(&cfg.timeout, "timeout", 30*time.Second, "per-query timeout")
	fs.IntVar(&cfg.cacheSize, "cache", 0, "query cache capacity in entries (0 = default)")
	fs.StringVar(&cfg.logLevel, "log-level", "info", "log level: debug, info, warn, error")
	fs.BoolVar(&cfg.pprof, "pprof", false, "expose /debug/pprof/ profiling endpoints")
	fs.IntVar(&cfg.shards, "shards", 1, "geographic shard count: >1 serves /search through the in-process scatter-gather coordinator")
	fs.IntVar(&cfg.flightBuffer, "flight-buffer", 0, "flight recorder ring size (0 = default 256, negative disables the ring)")
	fs.DurationVar(&cfg.flightWindow, "flight-window", 0, "flight recorder tail-sampling window (0 = default 1m)")
	fs.IntVar(&cfg.flightKeep, "flight-keep", 0, "slowest queries retained per window (0 = default 16, negative disables)")
	fs.DurationVar(&cfg.flightThreshold, "flight-threshold", 0, "slow-query threshold floor (0 = adaptive p99 only)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	return cfg, nil
}

func parseLevel(s string) (slog.Level, error) {
	switch s {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", s)
	}
}

// loadDataset resolves the dataset source from the config.
func loadDataset(cfg *config) (*dataset.Dataset, error) {
	switch {
	case cfg.dataPath != "":
		return dataset.ReadAnyFile(cfg.dataPath)
	case cfg.synthFamily == "yelp":
		return synth.Generate(synth.YelpLike(cfg.n, cfg.seed))
	case cfg.synthFamily == "gaode":
		return synth.Generate(synth.GaodeLike(cfg.n, cfg.seed))
	case cfg.synthFamily != "":
		return nil, fmt.Errorf("unknown synthetic family %q (want yelp or gaode)", cfg.synthFamily)
	default:
		return nil, errors.New("one of -data or -synth is required")
	}
}

// datasetInfo derives the provenance stamped into flight-recorder
// capture exports from the dataset flags, so `seqbench -exp replay` can
// rebuild the exact corpus the captured queries ran against.
func datasetInfo(cfg *config) flight.DatasetInfo {
	if cfg.dataPath != "" {
		return flight.DatasetInfo{Kind: "file", Path: cfg.dataPath}
	}
	return flight.DatasetInfo{Kind: "synth", Family: cfg.synthFamily, N: cfg.n, Seed: cfg.seed}
}

func run(args []string) error {
	cfg, err := parseFlags(args)
	if err != nil {
		return err
	}
	level, err := parseLevel(cfg.logLevel)
	if err != nil {
		return err
	}
	logger := obs.NewLogger(os.Stderr, level)
	ds, err := loadDataset(cfg)
	if err != nil {
		return err
	}
	if cfg.shards < 1 {
		return fmt.Errorf("-shards must be >= 1, got %d", cfg.shards)
	}
	logger.Info("indexing", "objects", ds.Len(), "categories", ds.NumCategories(), "shards", cfg.shards)
	eng := core.NewEngine(ds)
	rec := flight.New(flight.Config{
		RingSize:    cfg.flightBuffer,
		Window:      cfg.flightWindow,
		KeepSlowest: cfg.flightKeep,
		Floor:       cfg.flightThreshold,
		Logger:      logger,
		Dataset:     datasetInfo(cfg),
	})
	srv := server.NewWith(eng, server.Config{
		Timeout:     cfg.timeout,
		CacheSize:   cfg.cacheSize,
		Logger:      logger,
		EnablePprof: cfg.pprof,
		Flight:      rec,
		Shards:      cfg.shards,
	})
	// Listen before serving so the actual bound address (":0" resolves
	// to an ephemeral port) can be logged for scripts to pick up.
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	logger.Info("listening", "addr", ln.Addr().String(), "pprof", cfg.pprof)
	httpServer := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}
	return httpServer.Serve(ln)
}
