// Command seqserver serves example-based spatial search over HTTP — the
// "map service" surface of the paper's Figure 2.
//
// Usage:
//
//	seqserver -data gaode.csv -addr :8080
//	seqserver -synth gaode -n 100000 -addr :8080   # no file needed
//
// Endpoints: GET /healthz, GET /stats, POST /search (see internal/server).
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"spatialseq/internal/core"
	"spatialseq/internal/dataset"
	"spatialseq/internal/server"
	"spatialseq/internal/synth"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "seqserver:", err)
		os.Exit(1)
	}
}

// config is the parsed command line.
type config struct {
	dataPath    string
	synthFamily string
	n           int
	seed        int64
	addr        string
	timeout     time.Duration
}

func parseFlags(args []string) (*config, error) {
	fs := flag.NewFlagSet("seqserver", flag.ContinueOnError)
	cfg := &config{}
	fs.StringVar(&cfg.dataPath, "data", "", "dataset path (CSV or binary)")
	fs.StringVar(&cfg.synthFamily, "synth", "", "generate a synthetic dataset instead: yelp or gaode")
	fs.IntVar(&cfg.n, "n", 50000, "synthetic dataset size")
	fs.Int64Var(&cfg.seed, "seed", 1, "synthetic dataset seed")
	fs.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	fs.DurationVar(&cfg.timeout, "timeout", 30*time.Second, "per-query timeout")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	return cfg, nil
}

// loadDataset resolves the dataset source from the config.
func loadDataset(cfg *config) (*dataset.Dataset, error) {
	switch {
	case cfg.dataPath != "":
		return dataset.ReadAnyFile(cfg.dataPath)
	case cfg.synthFamily == "yelp":
		return synth.Generate(synth.YelpLike(cfg.n, cfg.seed))
	case cfg.synthFamily == "gaode":
		return synth.Generate(synth.GaodeLike(cfg.n, cfg.seed))
	case cfg.synthFamily != "":
		return nil, fmt.Errorf("unknown synthetic family %q (want yelp or gaode)", cfg.synthFamily)
	default:
		return nil, errors.New("one of -data or -synth is required")
	}
}

func run(args []string) error {
	cfg, err := parseFlags(args)
	if err != nil {
		return err
	}
	ds, err := loadDataset(cfg)
	if err != nil {
		return err
	}
	log.Printf("indexing %d POIs (%d categories)...", ds.Len(), ds.NumCategories())
	eng := core.NewEngine(ds)
	srv := server.New(eng)
	srv.Timeout = cfg.timeout
	log.Printf("serving example-based spatial search on %s", cfg.addr)
	httpServer := &http.Server{
		Addr:              cfg.addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}
	return httpServer.ListenAndServe()
}
