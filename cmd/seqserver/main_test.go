package main

import (
	"path/filepath"
	"testing"

	"spatialseq/internal/dataset"
	"spatialseq/internal/synth"
)

func TestLoadDatasetSynth(t *testing.T) {
	cfg, err := parseFlags([]string{"-synth", "gaode", "-n", "300"})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := loadDataset(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 300 {
		t.Errorf("Len = %d", ds.Len())
	}
}

func TestLoadDatasetFromFile(t *testing.T) {
	src, err := synth.Generate(synth.YelpLike(100, 1))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ds.bin")
	if err := dataset.WriteBinaryFile(path, src); err != nil {
		t.Fatal(err)
	}
	cfg, err := parseFlags([]string{"-data", path})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := loadDataset(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 100 {
		t.Errorf("Len = %d", ds.Len())
	}
}

func TestLoadDatasetErrors(t *testing.T) {
	cases := [][]string{
		{},                         // no source
		{"-synth", "zzz"},          // unknown family
		{"-data", "/nope/missing"}, // missing file
	}
	for i, args := range cases {
		cfg, err := parseFlags(args)
		if err != nil {
			t.Fatalf("case %d: flag parse: %v", i, err)
		}
		if _, err := loadDataset(cfg); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestParseFlagsRejectsUnknown(t *testing.T) {
	if _, err := parseFlags([]string{"-bogus"}); err == nil {
		t.Error("unknown flag should fail")
	}
}
