package main

import (
	"path/filepath"
	"strings"
	"testing"

	"spatialseq/internal/bench"
)

// mkFile writes a BENCH file with one table2 lora record whose key knobs
// the caller can vary.
func mkFile(t *testing.T, dir, name string, p50, p99 float64, candidates int64, sim float64, extra ...bench.Record) string {
	t.Helper()
	f := &bench.File{
		SchemaVersion: bench.SchemaVersion,
		Env:           bench.Env{GoVersion: "go1.22.0", GOOS: "linux", GOARCH: "amd64", NumCPU: 8, Seed: 1},
		Records: append([]bench.Record{{
			Experiment: "table2",
			Family:     "Gaode",
			Size:       1000,
			Algorithm:  "lora",
			Queries:    20,
			Completed:  20,
			AvgSim:     sim,
			Latency:    bench.Latency{MeanMS: p50, P50MS: p50, P90MS: p99, P99MS: p99, MaxMS: p99, TotalMS: p50 * 20},
			Work:       map[string]int64{"candidates": candidates, "tuples": 500},
		}}, extra...),
	}
	path := filepath.Join(dir, name)
	if err := bench.WriteFile(path, f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestIdenticalInputsPassGate(t *testing.T) {
	dir := t.TempDir()
	a := mkFile(t, dir, "a.json", 1.0, 2.0, 1000, 0.9)
	var sb strings.Builder
	if err := run([]string{"-gate", a, a}, &sb); err != nil {
		t.Fatalf("identical inputs must pass the gate: %v\n%s", err, sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "| table2/Gaode/1000/lora |") || !strings.Contains(out, "| ok |") {
		t.Errorf("report missing ok series row:\n%s", out)
	}
	if !strings.Contains(out, "1 ok, 0 regressed") {
		t.Errorf("summary line wrong:\n%s", out)
	}
}

func TestInjectedLatencyRegressionGates(t *testing.T) {
	dir := t.TempDir()
	old := mkFile(t, dir, "old.json", 1.0, 2.0, 1000, 0.9)
	newer := mkFile(t, dir, "new.json", 2.0, 5.0, 1000, 0.9) // p50 +100%, p99 +150%
	var sb strings.Builder
	err := run([]string{"-gate", old, newer}, &sb)
	if err == nil {
		t.Fatalf("injected latency regression must gate:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "REGRESSION") || !strings.Contains(sb.String(), "p50 latency") {
		t.Errorf("report should flag the latency regression:\n%s", sb.String())
	}
	// Without -gate the same comparison is advisory: report but exit zero.
	var sb2 strings.Builder
	if err := run([]string{old, newer}, &sb2); err != nil {
		t.Errorf("advisory mode must not fail: %v", err)
	}
}

func TestWorkCounterRegressionGates(t *testing.T) {
	dir := t.TempDir()
	old := mkFile(t, dir, "old.json", 1.0, 2.0, 1000, 0.9)
	newer := mkFile(t, dir, "new.json", 1.0, 2.0, 2000, 0.9) // candidates doubled
	var sb strings.Builder
	if err := run([]string{"-gate", old, newer}, &sb); err == nil {
		t.Fatalf("doubled work counters must gate:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "work counter candidates 1000 -> 2000") {
		t.Errorf("report should name the drifted counter:\n%s", sb.String())
	}
}

func TestSimilarityDropGatesAndImprovementPasses(t *testing.T) {
	dir := t.TempDir()
	old := mkFile(t, dir, "old.json", 1.0, 2.0, 1000, 0.9)
	worse := mkFile(t, dir, "worse.json", 1.0, 2.0, 1000, 0.5) // sim -44%
	var sb strings.Builder
	if err := run([]string{"-gate", old, worse}, &sb); err == nil {
		t.Fatalf("similarity drop must gate:\n%s", sb.String())
	}
	faster := mkFile(t, dir, "faster.json", 0.4, 0.8, 1000, 0.9) // p50 -60%
	var sb2 strings.Builder
	if err := run([]string{"-gate", old, faster}, &sb2); err != nil {
		t.Fatalf("improvement must pass the gate: %v", err)
	}
	if !strings.Contains(sb2.String(), "improved") {
		t.Errorf("report should mark the improvement:\n%s", sb2.String())
	}
}

func TestMissingAndNewSeriesAreReportedNotGated(t *testing.T) {
	dir := t.TempDir()
	extra := bench.Record{Experiment: "table3", Family: "Yelp", Size: 500, Algorithm: "hsp",
		Queries: 20, Completed: 20, AvgSim: 0.8}
	old := mkFile(t, dir, "old.json", 1.0, 2.0, 1000, 0.9, extra)
	neu := bench.Record{Experiment: "fig10", Family: "Gaode", Size: 500, Algorithm: "lora",
		Queries: 20, Completed: 20, AvgSim: 0.8}
	newer := mkFile(t, dir, "new.json", 1.0, 2.0, 1000, 0.9, neu)
	var sb strings.Builder
	if err := run([]string{"-gate", old, newer}, &sb); err != nil {
		t.Fatalf("missing/new series must not gate: %v\n%s", err, sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "| table3/Yelp/500/hsp |") || !strings.Contains(out, "| missing |") {
		t.Errorf("missing series not reported:\n%s", out)
	}
	if !strings.Contains(out, "| fig10/Gaode/500/lora |") || !strings.Contains(out, "| new |") {
		t.Errorf("new series not reported:\n%s", out)
	}
	if !strings.Contains(out, "1 missing, 1 new") {
		t.Errorf("summary line wrong:\n%s", out)
	}
}

func TestThresholdFlag(t *testing.T) {
	dir := t.TempDir()
	old := mkFile(t, dir, "old.json", 1.0, 2.0, 1000, 0.9)
	newer := mkFile(t, dir, "new.json", 1.3, 2.0, 1000, 0.9) // +30%
	var sb strings.Builder
	if err := run([]string{"-gate", "-threshold", "0.5", old, newer}, &sb); err != nil {
		t.Errorf("+30%% under a 50%% threshold must pass: %v", err)
	}
	var sb2 strings.Builder
	if err := run([]string{"-gate", "-threshold", "0.1", old, newer}, &sb2); err == nil {
		t.Error("+30% over a 10% threshold must gate")
	}
	var sb3 strings.Builder
	if err := run([]string{"-threshold", "0", old, newer}, &sb3); err == nil {
		t.Error("zero threshold must be rejected")
	}
}

func TestUsageAndBadInputs(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"only-one.json"}, &sb); err == nil {
		t.Error("one positional arg should fail")
	}
	dir := t.TempDir()
	a := mkFile(t, dir, "a.json", 1, 2, 100, 0.9)
	if err := run([]string{a, filepath.Join(dir, "nope.json")}, &sb); err == nil {
		t.Error("unreadable NEW file should fail")
	}
}

func TestZeroOldSeriesIsNotComparableNotRegression(t *testing.T) {
	dir := t.TempDir()
	// Old run completed no queries: every latency and work value is 0.
	f := &bench.File{
		SchemaVersion: bench.SchemaVersion,
		Env:           bench.Env{Seed: 1},
		Records: []bench.Record{{
			Experiment: "table2", Family: "Gaode", Size: 1000, Algorithm: "lora",
			Queries: 20, Completed: 0, TimedOut: true,
			Work: map[string]int64{"candidates": 0, "tuples": 0},
		}},
	}
	old := filepath.Join(dir, "old.json")
	if err := bench.WriteFile(old, f); err != nil {
		t.Fatal(err)
	}
	newer := mkFile(t, dir, "new.json", 1.0, 2.0, 1000, 0.9)
	var sb strings.Builder
	if err := run([]string{"-gate", old, newer}, &sb); err != nil {
		t.Fatalf("zero-valued old series must not gate as an infinite regression: %v\n%s", err, sb.String())
	}
	out := sb.String()
	if strings.Contains(out, "Inf") || strings.Contains(out, "NaN") {
		t.Errorf("report must not print Inf/NaN deltas:\n%s", out)
	}
	if !strings.Contains(out, "not comparable") {
		t.Errorf("report should note the series is not comparable:\n%s", out)
	}
}

func TestNewlyTimedOutGates(t *testing.T) {
	dir := t.TempDir()
	old := mkFile(t, dir, "old.json", 1.0, 2.0, 1000, 0.9)
	f := &bench.File{
		SchemaVersion: bench.SchemaVersion,
		Env:           bench.Env{Seed: 1},
		Records: []bench.Record{{
			Experiment: "table2", Family: "Gaode", Size: 1000, Algorithm: "lora",
			Queries: 20, Completed: 20, TimedOut: true, AvgSim: 0.9,
			Latency: bench.Latency{P50MS: 1, P99MS: 2},
			Work:    map[string]int64{"candidates": 1000, "tuples": 500},
		}},
	}
	path := filepath.Join(dir, "to.json")
	if err := bench.WriteFile(path, f); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-gate", old, path}, &sb); err == nil {
		t.Fatalf("newly timed out series must gate:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "newly times out") {
		t.Errorf("report should note the timeout:\n%s", sb.String())
	}
}
