// Command benchdiff compares two machine-readable BENCH files written by
// `seqbench -json` and prints a markdown regression report.
//
// Usage:
//
//	benchdiff OLD.json NEW.json
//	benchdiff -gate -threshold 0.2 BENCH_baseline.json BENCH_new.json
//
// Records are matched by (experiment, family, label, size, algorithm).
// For every matched series the report shows the latency percentile, work
// counter, and similarity deltas; a series regresses when p50 or p99
// latency or the total work counters grow beyond the noise threshold,
// when average similarity drops beyond it, when fewer queries complete,
// when the new run times out where the old one did not, or when a gauge
// carried by both sides (e.g. the skew experiment's worker imbalance
// ratio) grows beyond the threshold plus an absolute slack. Work counters
// are deterministic for a fixed seed, so their drift is a real behavior
// change, not measurement noise — latency deltas on small workloads are
// noisy, which is why the threshold defaults to 20%.
//
// With -gate the exit status is non-zero when any series regressed — the
// CI hook. Series present on only one side are reported ("missing" /
// "new") but never gate: baselines routinely cover fewer experiments
// than a full run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"spatialseq/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	threshold := fs.Float64("threshold", 0.20, "relative noise threshold (0.20 = 20%)")
	gate := fs.Bool("gate", false, "exit non-zero when a series regresses beyond the threshold")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: benchdiff [-gate] [-threshold 0.2] OLD.json NEW.json")
	}
	if *threshold <= 0 {
		return fmt.Errorf("threshold must be > 0, got %g", *threshold)
	}
	oldF, err := bench.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	newF, err := bench.ReadFile(fs.Arg(1))
	if err != nil {
		return err
	}
	regressions := report(w, fs.Arg(0), fs.Arg(1), oldF, newF, *threshold)
	if *gate && regressions > 0 {
		return fmt.Errorf("%d series regressed beyond %.0f%%", regressions, *threshold*100)
	}
	return nil
}

// diff is one compared series.
type diff struct {
	name     string
	old, new *bench.Record
	status   string // ok | REGRESSION | improved | missing | new
	notes    []string
}

// report prints the markdown comparison and returns the regression count.
func report(w io.Writer, oldPath, newPath string, oldF, newF *bench.File, threshold float64) int {
	fmt.Fprintf(w, "## benchdiff: %s -> %s (threshold %.0f%%)\n\n", oldPath, newPath, threshold*100)
	fmt.Fprintf(w, "env: %s | %s\n\n", envLine(oldF.Env), envLine(newF.Env))

	newByKey := make(map[string]*bench.Record, len(newF.Records))
	for i := range newF.Records {
		newByKey[newF.Records[i].Key()] = &newF.Records[i]
	}
	oldKeys := make(map[string]bool, len(oldF.Records))
	var diffs []diff
	for i := range oldF.Records {
		o := &oldF.Records[i]
		oldKeys[o.Key()] = true
		d := diff{name: o.String(), old: o, new: newByKey[o.Key()]}
		if d.new == nil {
			d.status = "missing"
		} else {
			compare(&d, threshold)
		}
		diffs = append(diffs, d)
	}
	for i := range newF.Records {
		n := &newF.Records[i]
		if !oldKeys[n.Key()] {
			diffs = append(diffs, diff{name: n.String(), new: n, status: "new"})
		}
	}

	fmt.Fprintln(w, "| series | p50 ms | p99 ms | work | avg sim | status |")
	fmt.Fprintln(w, "|---|---|---|---|---|---|")
	counts := map[string]int{}
	for _, d := range diffs {
		counts[d.status]++
		fmt.Fprintf(w, "| %s | %s | %s | %s | %s | %s |\n",
			d.name,
			cell(d, func(r *bench.Record) float64 { return r.Latency.P50MS }, "%.3f"),
			cell(d, func(r *bench.Record) float64 { return r.Latency.P99MS }, "%.3f"),
			cell(d, func(r *bench.Record) float64 { return float64(bench.WorkTotal(r.Work)) }, "%.0f"),
			cell(d, func(r *bench.Record) float64 { return r.AvgSim }, "%.4f"),
			d.status)
	}
	fmt.Fprintln(w)
	for _, d := range diffs {
		for _, n := range d.notes {
			fmt.Fprintf(w, "- %s: %s\n", d.name, n)
		}
	}
	fmt.Fprintf(w, "\n%d series: %d ok, %d regressed, %d improved, %d missing, %d new\n",
		len(diffs), counts["ok"], counts["REGRESSION"], counts["improved"], counts["missing"], counts["new"])
	return counts["REGRESSION"]
}

// compare fills d.status and d.notes for a matched series.
func compare(d *diff, threshold float64) {
	var regressed, improved bool
	check := func(metric string, oldV, newV float64, moreIsWorse bool, format string) {
		delta, ok := relDelta(oldV, newV)
		if !ok {
			d.notes = append(d.notes, fmt.Sprintf("%s not comparable: "+format+" -> "+format+" (old is 0)", metric, oldV, newV))
			return
		}
		worse := delta
		if !moreIsWorse {
			worse = -delta
		}
		switch {
		case worse > threshold:
			regressed = true
			d.notes = append(d.notes, fmt.Sprintf("%s "+format+" -> "+format+" (%+.1f%%)", metric, oldV, newV, delta*100))
		case worse < -threshold:
			improved = true
		}
	}
	check("p50 latency", d.old.Latency.P50MS, d.new.Latency.P50MS, true, "%.3fms")
	check("p99 latency", d.old.Latency.P99MS, d.new.Latency.P99MS, true, "%.3fms")
	check("total work", float64(bench.WorkTotal(d.old.Work)), float64(bench.WorkTotal(d.new.Work)), true, "%.0f")
	check("avg similarity", d.old.AvgSim, d.new.AvgSim, false, "%.4f")
	// Per-counter drill-down: name the counter that moved, so the report
	// says "candidates +45%" instead of just "total work +12%". Small
	// absolute counts are skipped as noise-prone.
	union := make(map[string]bool, len(d.old.Work)+len(d.new.Work))
	for k := range d.old.Work {
		union[k] = true
	}
	for k := range d.new.Work {
		union[k] = true
	}
	keys := make([]string, 0, len(union))
	for k := range union {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if strings.HasPrefix(k, "attr_sim_memo_") {
			// cache telemetry, not enumeration work (see bench.WorkTotal):
			// hit/miss ratios shift whenever subspace counts do, without
			// the search doing more work.
			continue
		}
		ov, nv := d.old.Work[k], d.new.Work[k]
		if ov < 100 && nv < 100 {
			continue
		}
		delta, ok := relDelta(float64(ov), float64(nv))
		if !ok {
			d.notes = append(d.notes, fmt.Sprintf("work counter %s not comparable: 0 -> %d", k, nv))
			continue
		}
		if delta > threshold {
			regressed = true
			d.notes = append(d.notes, fmt.Sprintf("work counter %s %d -> %d (%+.1f%%)", k, ov, nv, delta*100))
		}
	}
	// Gauge drill-down: derived float metrics (imbalance ratios, load
	// shares). Compared only when both sides carry the gauge — gauges are
	// additive, so old baselines may simply predate one. Gauges mix
	// deterministic ratios with timing-derived shares, so beyond the
	// relative threshold a small absolute slack absorbs scheduling noise
	// around tiny values (an imbalance of 1.00 -> 1.21 is within the
	// slack; 2.50 -> 3.10 is a real regression).
	const gaugeSlack = 0.25
	gkeys := make([]string, 0, len(d.old.Gauges))
	for k := range d.old.Gauges {
		if _, ok := d.new.Gauges[k]; ok {
			gkeys = append(gkeys, k)
		}
	}
	sort.Strings(gkeys)
	for _, k := range gkeys {
		ov, nv := d.old.Gauges[k], d.new.Gauges[k]
		delta, ok := relDelta(ov, nv)
		if !ok || delta <= threshold || nv-ov <= gaugeSlack {
			continue
		}
		regressed = true
		d.notes = append(d.notes, fmt.Sprintf("gauge %s %.3f -> %.3f (%+.1f%%)", k, ov, nv, delta*100))
	}
	if d.new.Completed < d.old.Completed {
		regressed = true
		d.notes = append(d.notes, fmt.Sprintf("completed queries %d -> %d", d.old.Completed, d.new.Completed))
	}
	if d.new.TimedOut && !d.old.TimedOut {
		regressed = true
		d.notes = append(d.notes, "newly times out")
	}
	if d.new.Error != "" && d.old.Error == "" {
		regressed = true
		d.notes = append(d.notes, "newly errors: "+d.new.Error)
	}
	switch {
	case regressed:
		d.status = "REGRESSION"
	case improved:
		d.status = "improved"
	default:
		d.status = "ok"
	}
}

// relDelta returns (new-old)/old and whether that ratio exists. It does
// not when old is 0 and new is not (e.g. the old run completed no
// queries, so its percentiles and work counters are all zero): no finite
// relative delta describes that, so callers report "not comparable"
// instead of gating on an infinite regression.
func relDelta(oldV, newV float64) (float64, bool) {
	if oldV == 0 {
		return 0, newV == 0
	}
	return (newV - oldV) / oldV, true
}

// cell renders one metric column: "old -> new (+x%)" for matched series,
// the single value otherwise.
func cell(d diff, get func(*bench.Record) float64, format string) string {
	switch {
	case d.old == nil:
		return fmt.Sprintf(format, get(d.new))
	case d.new == nil:
		return fmt.Sprintf(format, get(d.old))
	}
	oldV, newV := get(d.old), get(d.new)
	delta, ok := relDelta(oldV, newV)
	if !ok {
		return fmt.Sprintf(format+" -> "+format+" (n/a)", oldV, newV)
	}
	return fmt.Sprintf(format+" -> "+format+" (%+.1f%%)", oldV, newV, delta*100)
}

// envLine summarizes one Env header for the report preamble.
func envLine(e bench.Env) string {
	parts := []string{e.GoVersion, fmt.Sprintf("%s/%s", e.GOOS, e.GOARCH), fmt.Sprintf("%d cpu", e.NumCPU)}
	if e.GitSHA != "" {
		sha := e.GitSHA
		if len(sha) > 12 {
			sha = sha[:12]
		}
		parts = append(parts, sha)
	}
	parts = append(parts, fmt.Sprintf("seed %d", e.Seed))
	return strings.Join(parts, " ")
}
